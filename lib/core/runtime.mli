(** The simulation runtime: runs a full cluster of {!Node}s over the
    discrete-event simulator, with the machine model (CPU + NIC queues) and
    network model of paper Section V, a client workload, and metric
    collection.

    This is the testbed substitute documented in DESIGN.md: the protocol
    logic, forests, quorums and Byzantine strategies are all real; only
    machines and wires are modelled. Runs are deterministic in
    [config.seed]. *)

type ledger_block = {
  l_height : int;
  l_hash : Bamboo_types.Ids.hash;
  l_view : int;
  l_txs : Bamboo_types.Tx.id list;  (** Committed tx ids, proposal order. *)
}
(** One committed block as seen by one replica, stripped to what the
    cross-replica agreement check needs. *)

type ledger = ledger_block array
(** A replica's committed chain, heights 1..committed (genesis excluded),
    lowest first. Extracted once at the end of a run; the [bamboo_check]
    oracle diffs these across replicas. *)

type result = {
  summary : Metrics.summary;
  series : (float * float) list;  (** Committed-throughput time series. *)
  final_views : int array;  (** Per-replica view at the horizon. *)
  committed_heights : int array;  (** Per-replica committed height. *)
  cpu_utilization : float array;
      (** Per-replica fraction of virtual time the modelled CPU was busy;
          identifies the bottleneck resource at saturation. *)
  consistent : bool;
      (** Cross-replica consistency check of §III-A: the committed chains
          agree block-by-block on the common prefix. *)
  any_violation : bool;  (** Any replica's commit conflicted locally. *)
  violations : bool array;
      (** Per-replica local-conflict flags ({!Node.safety_violation});
          [any_violation] is their disjunction. *)
  ledgers : ledger array;  (** Per-replica committed chains. *)
  decomposition : Bamboo_obs.Latency.summary;
      (** Per-transaction end-to-end latency split into client wire, CPU
          queueing, CPU service, mempool residency, NIC serialization and
          consensus wait; components sum to the measured latency. Only
          single-target (non-broadcast) submissions contribute. *)
  probe : Bamboo_obs.Probe.summary list;
      (** Queue-depth/utilization gauge summaries; empty unless
          [config.probe_interval > 0]. *)
  sim_events : int;  (** Discrete events fired by the simulator. *)
  metrics : Bamboo_metrics.Snapshot.t;
      (** Aggregate counters/gauges/histograms published at end of run:
          simulator queue tallies, network sends/drops/duplicates, crypto
          sign/verify and QC-cache counts, per-replica commit/view-change/
          timeout counters, mempool occupancy and batch fill, machine
          queue ops and peaks — plus every probe gauge when probing is on.
          [Snapshot.empty] unless the run was given an enabled registry. *)
}

(** {2 Controlled scheduling}

    Hooks for the [bamboo_explore] model checker. With a [scheduler]
    installed the runtime switches to a synchronous-execution abstraction:
    message deliveries are tagged in the simulator ({!Bamboo_sim.Sim.schedule_delivery})
    so their firing order can be chosen by the scheduler's controller, and
    a delivery executes its receive handler at the instant it fires — the
    machine pipelines (NIC serialization, CPU queueing) are bypassed,
    because pipeline contents are invisible to the checker's replica-state
    fingerprint and would make distinct states collide. Without a
    [scheduler] the runtime is byte-identical to one predating the hook. *)

type exec =
  | Exec_deliver of { src : int; dst : int; note : string }
      (** A controlled message delivery executed at [dst]; [note] is the
          {!Bamboo_types.Message.key} identity. *)
  | Exec_timer of { replica : int }  (** A replica timer fired. *)

type sched_view = {
  sv_nodes : Node.t array;  (** Live replica engines, for fingerprinting. *)
  sv_sim : Bamboo_sim.Sim.t;
  sv_timers : unit -> (int * int * float) list;
      (** Outstanding armed timers as [(replica, code, expiry)], sorted;
          [code] packs the timer kind with its view. *)
}
(** What the runtime exposes to a scheduler at installation time. *)

type sched_hooks = {
  sh_controller : Bamboo_sim.Sim.controller;
      (** Picks delivery order at each commutativity-window decision. *)
  sh_on_exec : exec -> unit;
      (** Called before each controlled delivery / timer handler runs
          (sleep-set wake-ups key on the executing replica). *)
}
(** What a scheduler gives back to the runtime. *)

val run :
  config:Config.t ->
  workload:Workload.t ->
  ?bucket:float ->
  ?observer:int ->
  ?trace:Bamboo_obs.Trace.t ->
  ?metrics:Bamboo_metrics.Registry.t ->
  ?wrap_safety:(Bamboo_types.Ids.replica -> Safety.t -> Safety.t) ->
  ?scheduler:(sched_view -> sched_hooks) ->
  ?verify_jobs:int ->
  unit ->
  result
(** [run ~config ~workload ()] simulates [config.runtime] virtual seconds.
    [observer] (default: the first honest replica) supplies the
    view/commit counts for CGR and BI. [bucket] (default 0.5 s) is the
    time-series granularity. [trace] (default {!Bamboo_obs.Trace.null})
    receives structured protocol/machine events; with the null sink all
    instrumentation reduces to one tag check and the simulation's event
    schedule is identical to an untraced run. Probing
    ([config.probe_interval > 0]) does add sampling events to the heap,
    though never reorders protocol events.

    [metrics] (default {!Bamboo_metrics.Registry.null}) collects aggregate
    counters/gauges/histograms. Metrics are observe-only: the hot paths
    keep plain per-run tallies that are published into the registry once
    at end of run, so simulation output is byte-identical with metrics
    enabled or disabled, at any [--jobs].

    Infrastructure faults — crashes, recoveries, partitions, per-link
    delay/loss/duplication/reordering, CPU slowdown, clock skew, delay
    fluctuation — come from [config.faults] and are executed by the
    [bamboo_faults] engine on dedicated RNG streams: a run with an empty
    schedule is bit-identical to one predating the fault subsystem.

    [wrap_safety] (test-only) is handed to every {!Node.create} with the
    replica id applied, letting the test suite plant deliberately broken
    protocol rules that the [bamboo_check] oracle must catch.

    [scheduler] (model checking) installs controlled scheduling before any
    replica boots — see {!sched_hooks}. Omitting it (or passing no
    scheduler) leaves the runtime bit-identical to the pre-hook one.

    [verify_jobs] enables the intra-cell parallel signature audit: the
    simulator charges verification cost in its CPU model without executing
    it ([verify_sigs:false]); with [verify_jobs = Some j] every fresh
    (non-duplicate) delivered message is buffered per delivery window
    (1 ms of virtual time, capped at 256 messages) and its full signature
    check ({!Bamboo_types.Message.verify}) fans out over [j] Pool domains.
    Results join in submission (= delivery) order and nothing feeds back
    into the simulation, so output is byte-identical with the audit on or
    off and at any [j]; tallies surface as the [parallel_verify_*]
    metrics. *)
