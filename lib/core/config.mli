(** Experiment configuration: the parameters of Table I of the paper, plus
    the simulator's machine/network parameters of Section V. A configuration
    is immutable for a run and can be round-tripped through JSON ("managed
    via a JSON file distributed to every node"). *)

type protocol = Hotstuff | Twochain | Streamlet | Fasthotstuff

type strategy = Honest | Silence | Fork
(** The Byzantine Proposing-rule strategies of §IV-A. The paper's default
    [strategy] value is "silence"; it only takes effect for replicas with
    id < [byz_no]. *)

type election = Rotation | Static of int | Hashed
(** [master = 0] in Table I means rotating leadership; [Static i] pins the
    leader, [Hashed] derives the leader from a hash of the view. *)

type propose_policy = Immediate | Wait_timeout
(** Whether a new-view leader proposes as soon as it holds a QC/TC for the
    previous view (optimistic responsiveness) or waits out the view timer
    first (the non-responsive setting of the Fig. 15 "t100" experiment). *)

type trace_format = Jsonl | Chrome
(** Output format for structured traces: JSON-lines (one event per line)
    or the Chrome trace_event format (opens in Perfetto). *)

type t = {
  protocol : protocol;
  n : int;  (** Number of replicas. *)
  byz_no : int;  (** Number of Byzantine nodes (Table I [byzNo]). *)
  strategy : strategy;
  election : election;
  bsize : int;  (** Transactions per block (default 400). *)
  memsize : int;  (** Mempool capacity (default 1000 in the paper; the
                      simulator default is larger so that open-loop
                      saturation sweeps are not capped by admission). *)
  psize : int;  (** Transaction payload bytes (default 0). *)
  timeout : float;  (** View timeout in seconds (Table I: 100 ms). *)
  backoff : float;
      (** Geometric view-timer growth across consecutive timed-out views
          (1.0 = fixed timers, the paper's setting); resets on progress. *)
  propose_policy : propose_policy;
  tc_adopt_qc : bool;
      (** Whether replicas adopt the highest QC carried by timeout
          messages / timeout certificates. The paper's pacemaker (§III-B)
          broadcasts plain <TIMEOUT, v>, so the default is [false]; the
          next leader then proposes from its own hQC. Fast-HotStuff's
          responsive view change requires [true]. *)
  echo : bool option;
      (** Overrides the protocol's message-echoing behaviour (Streamlet
          echoes by default, the HotStuff family does not); [None] keeps
          the protocol's own choice. Used by the echo-cost ablation. *)
  runtime : float;  (** Measured run duration in virtual seconds. *)
  warmup : float;  (** Virtual seconds excluded from metrics. *)
  (* Simulator machine/network parameters (Section V). *)
  mu : float;  (** Mean one-way replica-replica delay, seconds. *)
  sigma : float;  (** Stddev of that delay. *)
  extra_delay_mu : float;  (** Table I [delay]: added mean delay. *)
  extra_delay_sigma : float;
  loss : float;
      (** Independent per-message drop probability in the simulated
          network, [0, 1). Replicas recover missing ancestors through the
          block-synchronization protocol. Default 0. *)
  bandwidth : float;  (** NIC bandwidth, bytes/second. *)
  cpu_op : float;  (** Seconds per crypto op (sign or verify). *)
  cpu_per_tx : float;  (** Per-transaction hashing/validation seconds. *)
  seed : int;
  jobs : int;
      (** Worker domains for the parallel experiment driver (the [jobs]
          JSON key / [--jobs] flag). Affects only how many independent
          simulation cells run concurrently — never the simulation
          itself, whose output is bit-identical at any job count. Default:
          [Domain.recommended_domain_count ()]; must be [>= 1]. *)
  (* Observability (off by default; disabled instrumentation is free). *)
  trace_file : string option;  (** Write a structured trace here. *)
  trace_format : trace_format;
  probe_interval : float;
      (** Virtual-time period for sampling CPU/NIC queue depths and
          utilization; 0 (the default) disables probing. *)
  faults : Bamboo_faults.Schedule.t;
      (** Declarative fault schedule (the JSON [faults] section), executed
          by the [bamboo_faults] engine during the run. Empty (the
          default) leaves the run bit-identical to a fault-free one. *)
}

val default : t
(** Table I defaults: HotStuff, n = 4, no Byzantine nodes, rotating
    leaders, bsize 400, psize 0, timeout 100 ms, plus the calibrated
    simulator parameters documented in DESIGN.md §4. *)

val quorum_size : t -> int

val validate : t -> (t, string) result
(** Checks cross-field invariants (e.g. [byz_no <= f], positive sizes). *)

val to_json : t -> Bamboo_util.Json.t

val of_json : Bamboo_util.Json.t -> (t, string) result
(** Missing fields take their {!default} value; unknown fields are
    rejected. *)

val protocol_name : protocol -> string

val protocol_of_name : string -> (protocol, string) result

val trace_format_name : trace_format -> string

val trace_format_of_name : string -> (trace_format, string) result

val pp : Format.formatter -> t -> unit
