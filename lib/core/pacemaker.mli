(** The pacemaker (paper §III-B): view synchronization in the style of
    LibraBFT's round synchronizer. Whenever a replica times out in its
    current view it broadcasts a TIMEOUT message and advances once a quorum
    of timeouts (a TC) is assembled; replicas also advance when they see a
    QC or TC for their current view or beyond. The module tracks only view
    state — actual timer scheduling and message transmission belong to the
    node engine and runtime. *)

open Bamboo_types

type t

type entry_reason =
  | Via_qc of Qc.t
  | Via_tc of Tcert.t
  | Startup  (** Entering view 1 at boot. *)

val create : ?backoff:float -> timeout:float -> unit -> t
(** [timeout] is the base per-view timer duration (Table I, default
    100 ms). [backoff] (default 1.0, i.e. fixed timers) multiplies the
    duration for every consecutive view entered through a timeout
    certificate, so timers grow geometrically while the network cannot
    keep up and reset to the base the moment a QC makes progress. Must be
    at least 1. *)

val current_view : t -> Ids.view

val entry_reason : t -> entry_reason
(** How the current view was entered — leaders use this to decide whether
    the first proposal must carry a TC. *)

val reason_label : entry_reason -> string
(** ["qc"], ["tc"] or ["startup"]; used by trace events. *)

val timer_duration : t -> float
(** Duration for the current view's timer, including any backoff. *)

val base_timeout : t -> float

val consecutive_timeouts : t -> int
(** Views entered through TCs since the last QC-driven advance. *)

val advance : t -> to_view:Ids.view -> reason:entry_reason -> bool
(** [advance t ~to_view ~reason] moves to [to_view] if it is beyond the
    current view; returns whether a move happened. The caller must restart
    its view timer and consider proposing when it returns [true]. *)

val note_timer_fired : t -> Ids.view -> [ `Broadcast_timeout | `Stale ]
(** Reaction to a local view-timer expiry: [`Broadcast_timeout] whenever
    the view is still current — every expiry re-broadcasts (and re-arms),
    so a lost timeout message cannot starve TC formation — and [`Stale]
    for timers of abandoned views. *)

val timed_out : t -> Ids.view -> bool
(** Whether the local timer already fired for the given view. *)
