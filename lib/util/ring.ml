(* Vyukov-style bounded queue, restricted to a single consumer so the
   dequeue side needs no CAS. Invariants, with [cap] the power-of-two
   capacity and [mask = cap - 1]:

   - slot [i] stores generation counter [seq.(i)]:
       seq = pos        -> slot free for the producer claiming ticket [pos]
       seq = pos + 1    -> value for ticket [pos] published, consumer may take
       seq = pos + cap  -> consumed; free for ticket [pos + cap]
   - [head] is the next producer ticket; producers advance it with CAS
     before touching the slot, so two producers never write one slot.
   - [tail] is the next consumer ticket; only the consumer writes it
     (atomic so producers/wakers can read a consistent snapshot).

   Publication is the [Atomic.set] of the slot sequence after the value
   write: under the OCaml memory model that release-publishes the value
   to the consumer's acquire load of the same atomic. *)

type 'a t = {
  mask : int;
  slots : 'a option array;
  seq : int Atomic.t array;
  head : int Atomic.t;
  tail : int Atomic.t;
  closed : bool Atomic.t;
}

type push_result = Pushed | Full | Closed

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap =
    let rec up c = if c >= capacity then c else up (c * 2) in
    up 2
  in
  {
    mask = cap - 1;
    slots = Array.make cap None;
    seq = Array.init cap Atomic.make;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
  }

let capacity t = Array.length t.slots

let length t =
  let n = Atomic.get t.head - Atomic.get t.tail in
  if n < 0 then 0 else n

let is_empty t =
  let pos = Atomic.get t.tail in
  Atomic.get t.seq.(pos land t.mask) <> pos + 1

let is_closed t = Atomic.get t.closed
let close t = Atomic.compare_and_set t.closed false true

(* Claim ticket [pos] if its slot is free this generation. [seq - pos]
   is 0 when free, negative when the ring is full (consumer hasn't freed
   it), positive when another producer already claimed it (retry with a
   fresh head read). *)
let rec claim t =
  let pos = Atomic.get t.head in
  let d = Atomic.get t.seq.(pos land t.mask) - pos in
  if d = 0 then
    if Atomic.compare_and_set t.head pos (pos + 1) then Some pos else claim t
  else if d < 0 then None
  else claim t

let push t x =
  if Atomic.get t.closed then Closed
  else
    match claim t with
    | None -> Full
    | Some pos ->
        let i = pos land t.mask in
        t.slots.(i) <- Some x;
        Atomic.set t.seq.(i) (pos + 1);
        Pushed

(* Claim up to [n] consecutive tickets with one CAS by first scanning how
   many of the next slots are free, then advancing head past all of them. *)
let rec claim_run t n =
  let pos = Atomic.get t.head in
  let rec free k =
    if k = n then k
    else if Atomic.get t.seq.((pos + k) land t.mask) = pos + k then free (k + 1)
    else k
  in
  let m = free 0 in
  if m = 0 then (pos, 0)
  else if Atomic.compare_and_set t.head pos (pos + m) then (pos, m)
  else claim_run t n

let push_all t xs =
  if Atomic.get t.closed then 0
  else
    match xs with
    | [] -> 0
    | _ ->
        let n = List.length xs in
        let pos, m = claim_run t n in
        (* Publish in ticket order; the consumer may start draining the
           prefix while later elements are still being written. *)
        let rec fill k = function
          | x :: rest when k < m ->
              let i = (pos + k) land t.mask in
              t.slots.(i) <- Some x;
              Atomic.set t.seq.(i) (pos + k + 1);
              fill (k + 1) rest
          | _ -> ()
        in
        fill 0 xs;
        m

(* The get-then-set of [t.seq.(i)] and [t.tail] below is a deliberate
   plain read-modify-write: the ring is single-consumer, so [pop] is the
   only writer of either cell and there is no competing update to lose.
   (Producers write [seq] only for slots they own via [claim_run].) *)
let[@lint.allow "atomic-rmw"] pop t =
  let pos = Atomic.get t.tail in
  let i = pos land t.mask in
  if Atomic.get t.seq.(i) = pos + 1 then begin
    let v = t.slots.(i) in
    t.slots.(i) <- None;
    (* Free the slot for the producer one generation ahead, then advance
       the consumer cursor. *)
    Atomic.set t.seq.(i) (pos + Array.length t.slots);
    Atomic.set t.tail (pos + 1);
    v
  end
  else None

let drain t ?(max = max_int) f =
  let rec go k =
    if k >= max then k
    else
      match pop t with
      | None -> k
      | Some x ->
          f x;
          go (k + 1)
  in
  go 0
