(** Fixed-size work pool over OCaml 5 domains.

    [map] fans a list of independent tasks out to worker domains and
    returns the results in submission order, so a parallel run is
    indistinguishable from a sequential [List.map] as long as the task
    function itself is deterministic and shares no mutable state across
    tasks. With [jobs = 1] no domain is spawned and the tasks run inline
    on the calling domain, bit-identical to [List.map]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism the hardware
    supports (1 on a single-core machine). *)

val map :
  jobs:int -> ?probe:(int -> float -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] applications concurrently (never more than [List.length xs]
    domains), and returns the results in the order of [xs].

    [probe], when given, is called as [probe i seconds] after each
    completed task with the task's submission index and its wall-clock
    latency — on the worker domain that ran the task, so it must be
    domain-safe (the metrics registry's sharded handles are). Tasks that
    raise are not probed. The probe observes scheduling, it cannot affect
    results.

    If any application raises, the first exception (in completion order)
    is re-raised on the calling domain after all workers have stopped
    picking up new tasks. Raises [Invalid_argument] if [jobs < 1]. *)
