(** Deterministic views over [Hashtbl.t]. Bucket order is unspecified,
    so results that can reach a trace sink, the ledger or a rendered
    table must be sorted first; these helpers concentrate the one
    justified [no-order-leak] suppression in the repository. *)

val sorted_bindings :
  compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key with [compare]. *)

val sorted_keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
