type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    total = 0.0;
    samples = Array.make 64 0.0;
    len = 0;
    sorted = true;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x;
  if t.len = Array.length t.samples then begin
    let buf = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 buf 0 t.len;
    t.samples <- buf
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean

let variance t =
  if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then 0.0 else t.min
let max_value t = if t.n = 0 then 0.0 else t.max
let total t = t.total

let ensure_sorted t =
  if not t.sorted then begin
    let a = Array.sub t.samples 0 t.len in
    Array.sort Float.compare a;
    Array.blit a 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.of_int (int_of_float rank)) in
    let hi = min (t.len - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (t.samples.(lo) *. (1.0 -. frac)) +. (t.samples.(hi) *. frac)
  end

let median t = percentile t 50.0

let merge a b =
  let t = create () in
  for i = 0 to a.len - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.len - 1 do
    add t b.samples.(i)
  done;
  t

let mean_of l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev_of l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean_of l in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
      sqrt (ss /. float_of_int (List.length l - 1))
