(** Mutable binary min-heap, ordered by a user-supplied comparison.

    Ties are broken by insertion order (FIFO among equal keys), which
    deterministic-replay users rely on. Entries are stored directly in a
    flat array (no per-slot [option] box); vacated slots are blanked so
    popped values are collectable immediately. The only value the heap may
    retain beyond its logical contents is the first entry ever pushed,
    which serves as the blanking filler.

    The simulator's own event queue is a monomorphic float-keyed
    specialization living in [Bamboo_sim.Sim]; this polymorphic heap
    remains for general use. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap whose minimum is with respect to
    [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. Among elements that
    compare equal, the one pushed first is returned first. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
