let uniform rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let normal rng ~mu ~sigma =
  (* Box-Muller; we draw u1 in (0,1] to avoid log 0. *)
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let normal_pos rng ~mu ~sigma = Float.max 0.0 (normal rng ~mu ~sigma)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  let u = 1.0 -. Rng.float rng 1.0 in
  -.log u /. rate

let poisson rng ~mean =
  if mean < 0.0 then invalid_arg "Dist.poisson: mean must be non-negative";
  if mean = 0.0 then 0
  else if mean > 60.0 then
    (* Normal approximation is ample for workload generation. *)
    let x = normal rng ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else begin
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.float rng 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end

let order_statistic_mean rng ~n ~k ~mu ~sigma ~trials =
  if k < 1 || k > n then invalid_arg "Dist.order_statistic_mean: k out of range";
  let sample = Array.make n 0.0 in
  let total = ref 0.0 in
  for _ = 1 to trials do
    for i = 0 to n - 1 do
      sample.(i) <- normal rng ~mu ~sigma
    done;
    Array.sort Float.compare sample;
    total := !total +. sample.(k - 1)
  done;
  !total /. float_of_int trials

let erf_as z =
  (* Abramowitz & Stegun 7.1.26 for z >= 0, |error| <= 1.5e-7. *)
  let t = 1.0 /. (1.0 +. (0.3275911 *. z)) in
  let poly =
    ((((1.061405429 *. t -. 1.453152027) *. t +. 1.421413741) *. t
     -. 0.284496736)
     *. t
    +. 0.254829592)
    *. t
  in
  1.0 -. (poly *. exp (-.(z *. z)))

let normal_cdf x =
  let z = Float.abs x /. sqrt 2.0 in
  let e = erf_as z in
  if x >= 0.0 then 0.5 *. (1.0 +. e) else 0.5 *. (1.0 -. e)

let log_choose n k =
  let rec lf acc i = if i <= 1 then acc else lf (acc +. log (float_of_int i)) (i - 1) in
  lf 0.0 n -. lf 0.0 k -. lf 0.0 (n - k)

let order_statistic_mean_numeric ~n ~k ~mu ~sigma =
  if k < 1 || k > n then
    invalid_arg "Dist.order_statistic_mean_numeric: k out of range";
  (* E X_(k) = k * C(n,k) * int x phi(x) Phi(x)^(k-1) (1-Phi(x))^(n-k) dx for
     the standard normal, then rescale. Trapezoid over [-8, 8]. *)
  let steps = 4000 in
  let lo = -8.0 and hi = 8.0 in
  let h = (hi -. lo) /. float_of_int steps in
  let logc = log (float_of_int k) +. log_choose n k in
  let f x =
    let phi = exp (-.(x *. x) /. 2.0) /. sqrt (2.0 *. Float.pi) in
    let cdf = normal_cdf x in
    if cdf <= 0.0 || cdf >= 1.0 then 0.0
    else
      let logw =
        logc
        +. (float_of_int (k - 1) *. log cdf)
        +. (float_of_int (n - k) *. log (1.0 -. cdf))
      in
      x *. phi *. exp logw
  in
  let acc = ref 0.0 in
  for i = 0 to steps do
    let x = lo +. (h *. float_of_int i) in
    let w = if i = 0 || i = steps then 0.5 else 1.0 in
    acc := !acc +. (w *. f x)
  done;
  mu +. (sigma *. !acc *. h)
