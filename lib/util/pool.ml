let recommended_jobs () = Domain.recommended_domain_count ()

(* Wall-clock reads feed the optional per-task latency probe only; the
   timings are observability output and never influence task results or
   ordering, so the determinism rules stay intact. *)
let monotime () =
  (Unix.gettimeofday [@lint.allow "no-ambient-nondeterminism"]) ()

let timed probe f i x =
  match probe with
  | None -> f x
  | Some p ->
      let t0 = monotime () in
      let r = f x in
      p i (monotime () -. t0);
      r

(* Work-stealing by atomic index: workers repeatedly claim the next
   unclaimed input slot, so long tasks do not hold up short ones and the
   result array is filled in input order regardless of completion order. *)
let map_parallel ~jobs ~probe f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failed = Atomic.make None in
  (* [results] is written by every worker, but the atomic ticket in
     [next] hands each index to exactly one of them, and the spawner
     only reads after joining — disjoint writes, no lock needed. *)
  let[@lint.allow "domain-escape"] rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n && Atomic.get failed = None then begin
      (match timed probe f i inputs.(i) with
      | r -> results.(i) <- Some r
      | exception e ->
          (* Keep the first failure; once set, workers drain out. *)
          ignore (Atomic.compare_and_set failed None (Some e) : bool));
      worker ()
    end
  in
  let spawned =
    (* The calling domain is worker number [jobs], so spawn one fewer. *)
    List.init
      (min jobs n - 1)
      (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  (match Atomic.get failed with Some e -> raise e | None -> ());
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false (* no failure: all set *))
       results)

let map ~jobs ?probe f xs =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match xs with
  | [] -> []
  | [ x ] -> [ timed probe f 0 x ]
  | xs when jobs = 1 -> List.mapi (fun i x -> timed probe f i x) xs
  | xs -> map_parallel ~jobs ~probe f (Array.of_list xs)
