let recommended_jobs () = Domain.recommended_domain_count ()

(* Work-stealing by atomic index: workers repeatedly claim the next
   unclaimed input slot, so long tasks do not hold up short ones and the
   result array is filled in input order regardless of completion order. *)
let map_parallel ~jobs f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failed = Atomic.make None in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n && Atomic.get failed = None then begin
      (match f inputs.(i) with
      | r -> results.(i) <- Some r
      | exception e ->
          (* Keep the first failure; once set, workers drain out. *)
          ignore (Atomic.compare_and_set failed None (Some e) : bool));
      worker ()
    end
  in
  let spawned =
    (* The calling domain is worker number [jobs], so spawn one fewer. *)
    List.init
      (min jobs n - 1)
      (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  (match Atomic.get failed with Some e -> raise e | None -> ());
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false (* no failure: all set *))
       results)

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs = 1 -> List.map f xs
  | xs -> map_parallel ~jobs f (Array.of_list xs)
