(** Descriptive statistics used by the benchmark facilities.

    [t] is a streaming accumulator (Welford's algorithm) that also retains
    the raw samples so that percentiles can be reported. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0 when fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** 0 when empty (consistent with {!mean} and {!percentile}, and safe to
    serialize — no infinities in JSON reports). *)

val max_value : t -> float
(** 0 when empty. *)

val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], by linear interpolation
    between closest ranks; 0 when empty. *)

val median : t -> float

val merge : t -> t -> t
(** Pooled statistics of the two sample sets. *)

val mean_of : float list -> float

val stddev_of : float list -> float
(** Sample standard deviation; 0 for fewer than two values. *)
