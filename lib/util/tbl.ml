(* Deterministic views over hash tables. Hashtbl bucket order is
   unspecified (and differs across key insertion histories), so any
   fold/iter whose result can reach a trace sink, the ledger, or a
   rendered table must go through [sorted_bindings] instead. This is
   the one place the linter's no-order-leak rule is deliberately
   suppressed; every other module sorts by going through here. *)

let sorted_bindings ~compare:cmp tbl =
  let bindings =
    (* Collecting into a list then sorting erases the bucket order. *)
    (Hashtbl.fold [@lint.allow "no-order-leak"])
      (fun k v acc -> (k, v) :: acc)
      tbl []
  in
  List.sort (fun (k1, _) (k2, _) -> cmp k1 k2) bindings

let sorted_keys ~compare:cmp tbl =
  List.map fst (sorted_bindings ~compare:cmp tbl)
