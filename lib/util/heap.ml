(* Entries carry an insertion sequence number so that equal keys pop in FIFO
   order: the simulator depends on this for deterministic replay.

   Entries are stored directly (no per-slot [option] box): slots at indices
   [>= len] are blanked with a retained filler entry so that popped values
   become collectable immediately. The filler is the first entry ever
   pushed; it is the only value the heap may keep alive beyond its logical
   contents. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  mutable buf : 'a entry array; (* [||] until the first push *)
  mutable filler : 'a entry option; (* blank for vacated slots *)
  mutable len : int;
  mutable next_seq : int;
  capacity : int; (* initial physical size, applied at first push *)
  cmp : 'a -> 'a -> int;
}

let create ?(capacity = 64) ~cmp () =
  if capacity <= 0 then invalid_arg "Heap.create: capacity must be positive";
  { buf = [||]; filler = None; len = 0; next_seq = 0; capacity; cmp }

let length h = h.len
let is_empty h = h.len = 0

let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else Int.compare a.seq b.seq

let swap h i j =
  let tmp = h.buf.(i) in
  h.buf.(i) <- h.buf.(j);
  h.buf.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.buf.(i) h.buf.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_cmp h h.buf.(l) h.buf.(!smallest) < 0 then smallest := l;
  if r < h.len && entry_cmp h h.buf.(r) h.buf.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let blank h =
  match h.filler with Some e -> e | None -> assert false (* len was > 0 *)

let push h x =
  let e = { value = x; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  (if Array.length h.buf = 0 then begin
     h.buf <- Array.make h.capacity e;
     h.filler <- Some e
   end
   else if h.len = Array.length h.buf then begin
     let buf = Array.make (2 * h.len) (blank h) in
     Array.blit h.buf 0 buf 0 h.len;
     h.buf <- buf
   end);
  h.buf.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.buf.(0) in
    h.len <- h.len - 1;
    h.buf.(0) <- h.buf.(h.len);
    h.buf.(h.len) <- blank h;
    if h.len > 0 then sift_down h 0;
    Some top.value
  end

let peek h = if h.len = 0 then None else Some h.buf.(0).value

let clear h =
  (match h.filler with
  | Some e -> Array.fill h.buf 0 (Array.length h.buf) e
  | None -> ());
  h.len <- 0
