type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let peek_is st c =
  match peek st with Some c' -> Char.equal c c' | None -> false

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st (Printf.sprintf "expected '%c', found '%c'" c x)
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let expect_word st w value =
  let n = String.length w in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = w then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" w)

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail st "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> fail st "unterminated \\u escape");
    advance st
  done;
  !v

let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
        | Some 'u' ->
            advance st;
            utf8_of_code buf (parse_hex4 st);
            loop ()
        | Some c -> fail st (Printf.sprintf "invalid escape '\\%c'" c)
        | None -> fail st "unterminated escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st
    | Some _ | None -> continue := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number '%s'" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st (Printf.sprintf "invalid number '%s'" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> expect_word st "true" (Bool true)
  | Some 'f' -> expect_word st "false" (Bool false)
  | Some 'n' -> expect_word st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)
  | None -> fail st "unexpected end of input"

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek_is st '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | Some c -> fail st (Printf.sprintf "expected ',' or '}', found '%c'" c)
      | None -> fail st "unterminated object"
    in
    members []
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek_is st ']' then begin
    advance st;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | Some c -> fail st (Printf.sprintf "expected ',' or ']', found '%c'" c)
      | None -> fail st "unterminated list"
    in
    elements []
  end

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> fail st (Printf.sprintf "trailing input '%c'" c));
  v

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  let pad level = if indent then Buffer.add_string buf (String.make (2 * level) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit level v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (level + 1);
            emit (level + 1) item)
          items;
        nl ();
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (level + 1);
            escape_string buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            emit (level + 1) item)
          fields;
        nl ();
        pad level;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

let member key v =
  match v with
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> invalid_arg (Printf.sprintf "Json.member %S: not an object" key)

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Json.to_int: not an integer"

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> invalid_arg "Json.to_float: not a number"

let to_bool = function
  | Bool b -> b
  | _ -> invalid_arg "Json.to_bool: not a boolean"

let get_string = function
  | String s -> s
  | _ -> invalid_arg "Json.get_string: not a string"

let to_list = function
  | List l -> l
  | _ -> invalid_arg "Json.to_list: not a list"
