(** Bounded lock-free ring buffer (bchan-style message plane).

    A power-of-two-capacity ring of slots, each guarded by its own
    sequence/generation counter (Vyukov's bounded-queue layout): producers
    claim slots with an atomic fetch-compare on the head cursor, publish by
    bumping the slot's sequence, and the single consumer's fast path is one
    sequence load + one value read per element — no locks, no allocation
    beyond the element itself, and O(1) regardless of occupancy.

    Supported topologies: SPSC and MPSC (many producers, one consumer).
    All producer operations ({!push}, {!push_all}, {!close}) are safe from
    any domain or thread; {!pop} and {!drain} must only ever be called by
    one consumer at a time.

    The ring is bounded by design: a full ring reports {!Full} (explicit
    backpressure) instead of growing without limit, which is what the
    mutex/condvar [Queue] transport did. Blocking/wakeup policy lives with
    the caller (see [Bamboo_network.Wakeup]); the ring itself never
    sleeps. *)

type 'a t

type push_result =
  | Pushed  (** Accepted and visible to the consumer. *)
  | Full  (** Backpressure: no free slot; retry, drop, or park. *)
  | Closed  (** The ring was closed; the element was not enqueued. *)

val create : capacity:int -> unit -> 'a t
(** [create ~capacity ()] makes an empty ring holding at least [capacity]
    elements; the actual capacity is [capacity] rounded up to a power of
    two (minimum 2). Raises [Invalid_argument] for [capacity <= 0]. *)

val capacity : 'a t -> int
(** Real (rounded) capacity. *)

val length : 'a t -> int
(** Snapshot of the occupancy, including producer-claimed slots whose
    value is still being published. Exact when quiescent; a racy estimate
    while producers are active. *)

val is_empty : 'a t -> bool
(** True when the consumer has no published element to pop. Consumer-side
    view; safe to call from the consumer or a waker. *)

val push : 'a t -> 'a -> push_result
(** Lock-free multi-producer enqueue. *)

val push_all : 'a t -> 'a list -> int
(** [push_all t xs] claims a run of consecutive slots with a single
    compare-and-set and publishes [xs] into them in order, returning how
    many elements were accepted. A short return (fewer than
    [List.length xs]) means the ring filled up (or was closed, in which
    case 0): the caller keeps the unaccepted suffix — explicit
    backpressure, never silent loss. Elements from one [push_all] are
    consumed contiguously (per-producer FIFO). *)

val pop : 'a t -> 'a option
(** Single-consumer dequeue; [None] when no published element is
    available. The fast path is O(1): one sequence load, one value read,
    one generation bump. *)

val drain : 'a t -> ?max:int -> ('a -> unit) -> int
(** [drain t ~max f] pops up to [max] (default: unbounded) published
    elements in FIFO order, calling [f] on each, and returns how many were
    consumed — the batched counterpart of {!pop} used by
    [recv_batch]-style transports to take a whole wakeup's worth of
    messages in one pass. [f] must not re-enter the ring. *)

val close : 'a t -> bool
(** Marks the ring closed; subsequent {!push}/{!push_all} report
    {!Closed}. Returns [true] for the call that performed the transition
    (so callers can run close-once effects), [false] if already closed.
    Elements already published remain poppable. *)

val is_closed : 'a t -> bool
