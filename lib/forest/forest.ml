open Bamboo_types
module Tbl = Bamboo_util.Tbl

type t = {
  blocks : (Ids.hash, Block.t) Hashtbl.t; (* uncommitted vertices *)
  children : (Ids.hash, Ids.hash list) Hashtbl.t;
  mutable committed : Block.t list; (* newest first, genesis last *)
  mutable committed_by_hash : (Ids.hash, Block.t) Hashtbl.t;
  mutable committed_by_height : (Ids.height, Block.t) Hashtbl.t;
}

type add_result = Added | Duplicate | Missing_parent | Below_prune_horizon

type commit_error =
  | Unknown_block
  | Conflicts_with_committed
  | Already_committed

let create () =
  let t =
    {
      blocks = Hashtbl.create 64;
      children = Hashtbl.create 64;
      committed = [ Block.genesis ];
      committed_by_hash = Hashtbl.create 64;
      committed_by_height = Hashtbl.create 64;
    }
  in
  Hashtbl.add t.committed_by_hash Block.genesis.hash Block.genesis;
  Hashtbl.add t.committed_by_height 0 Block.genesis;
  t

let last_committed t =
  match t.committed with
  | head :: _ -> head
  | [] -> assert false

let committed_height t = (last_committed t).Block.height

let committed_count t = List.length t.committed

let committed_at t h = Hashtbl.find_opt t.committed_by_height h

let find t h =
  match Hashtbl.find_opt t.blocks h with
  | Some b -> Some b
  | None -> Hashtbl.find_opt t.committed_by_hash h

let mem t h = Hashtbl.mem t.blocks h || Hashtbl.mem t.committed_by_hash h

let parent t (b : Block.t) = find t b.parent

let children t h =
  match Hashtbl.find_opt t.children h with
  | None -> []
  | Some hs -> List.filter_map (Hashtbl.find_opt t.blocks) hs

let size t = Hashtbl.length t.blocks

let add_child t ~parent ~child =
  let existing =
    match Hashtbl.find_opt t.children parent with None -> [] | Some l -> l
  in
  Hashtbl.replace t.children parent (child :: existing)

let add t (b : Block.t) =
  if mem t b.hash then Duplicate
  else begin
    let head = last_committed t in
    (* A valid extension must be strictly above the committed height and,
       if its parent is committed, that parent must be the committed
       head; anything else can never be committed and is dropped. *)
    if b.height <= head.height then Below_prune_horizon
    else
      match Hashtbl.find_opt t.committed_by_hash b.parent with
      | Some p ->
          if String.equal p.hash head.hash then begin
            Hashtbl.add t.blocks b.hash b;
            add_child t ~parent:b.parent ~child:b.hash;
            Added
          end
          else Below_prune_horizon
      | None ->
          if Hashtbl.mem t.blocks b.parent then begin
            Hashtbl.add t.blocks b.hash b;
            add_child t ~parent:b.parent ~child:b.hash;
            Added
          end
          else Missing_parent
  end

let extends t ~descendant ~ancestor =
  let rec walk h =
    if String.equal h ancestor then true
    else
      match find t h with
      | None -> false
      | Some b ->
          if b.height = 0 then false (* genesis reached without a match *)
          else walk b.parent
  in
  walk descendant

let commit t target =
  match Hashtbl.find_opt t.blocks target with
  | None ->
      if Hashtbl.mem t.committed_by_hash target then Error Already_committed
      else Error Unknown_block
  | Some block ->
      let head = last_committed t in
      (* Collect the uncommitted path from [target] down to the committed
         head. *)
      let rec path acc (b : Block.t) =
        if String.equal b.parent head.Block.hash then Some (b :: acc)
        else
          match Hashtbl.find_opt t.blocks b.parent with
          | Some p -> path (b :: acc) p
          | None -> None
      in
      (match path [] block with
      | None -> Error Conflicts_with_committed
      | Some newly ->
          (* Move the path into the committed chain. *)
          List.iter
            (fun (b : Block.t) ->
              Hashtbl.remove t.blocks b.hash;
              Hashtbl.add t.committed_by_hash b.hash b;
              Hashtbl.add t.committed_by_height b.height b;
              t.committed <- b :: t.committed)
            newly;
          let new_head = last_committed t in
          (* Prune: every surviving vertex must descend from the new head.
             Walk parents; reaching any other committed block (or a removed
             one) means the branch is dead. *)
          let descends_from_head (b : Block.t) =
            let rec walk h =
              if String.equal h new_head.Block.hash then true
              else
                match Hashtbl.find_opt t.blocks h with
                | Some b -> walk b.Block.parent
                | None -> false
            in
            walk b.Block.hash
          in
          (* Snapshot in hash order, then stable-sort by height: the
             pruned-block list reaches the Fork_prune trace events, so
             equal-height ties must not fall back to bucket order. *)
          let dead =
            List.filter_map
              (fun (_, b) -> if descends_from_head b then None else Some b)
              (Tbl.sorted_bindings ~compare:String.compare t.blocks)
          in
          List.iter
            (fun (b : Block.t) ->
              Hashtbl.remove t.blocks b.hash;
              Hashtbl.remove t.children b.hash)
            dead;
          let by_height (a : Block.t) (b : Block.t) =
            Int.compare a.height b.height
          in
          Ok (newly, List.stable_sort by_height dead))

(* Callers receive the uncommitted vertices in block-hash order so that
   anything they accumulate (e.g. byzantine equivocation targets) is
   independent of bucket layout. *)
let fold_uncommitted t f init =
  List.fold_left
    (fun acc (_, b) -> f acc b)
    init
    (Tbl.sorted_bindings ~compare:String.compare t.blocks)

let tip_candidates t =
  let leaves =
    List.filter_map
      (fun (h, b) -> if children t h = [] then Some b else None)
      (Tbl.sorted_bindings ~compare:String.compare t.blocks)
  in
  let head = last_committed t in
  let leaves = if leaves = [] then [ head ] else leaves in
  (* Stable sort on top of the hash-ordered snapshot: equal-height tips
     tie-break on hash, deterministically. *)
  List.stable_sort
    (fun (a : Block.t) (b : Block.t) -> Int.compare b.height a.height)
    leaves
