(** The Block Forest (paper §III-A).

    Tracks all known blocks as a set of trees rooted at the last committed
    block. Heights increase monotonically along parent links; a vertex has
    one parent of strictly smaller height and any number of children. The
    forest "guarantees that there is always a main branch, or main chain,
    which contains all the committed blocks cryptographically linked in the
    proposed order", and supports pruning everything that can no longer be
    committed.

    Committing a block finalizes its whole uncommitted ancestor path
    (prefix finalization) and prunes every conflicting branch; the txs of
    pruned ("forked", i.e. overwritten) blocks are handed back to the
    caller for mempool re-insertion, as in the paper's Byzantine
    experiments. *)

open Bamboo_types

type t

type add_result =
  | Added
  | Duplicate
  | Missing_parent  (** Parent unknown; the caller should buffer the block. *)
  | Below_prune_horizon
      (** The block conflicts with the committed prefix (its height is not
          above the committed height on a committed branch) and was
          discarded. *)

type commit_error =
  | Unknown_block
  | Conflicts_with_committed
      (** The block does not descend from the last committed block —
          committing it would fork the finalized chain. *)
  | Already_committed

val create : unit -> t
(** A forest containing only the genesis block, already committed. *)

val add : t -> Block.t -> add_result

val find : t -> Ids.hash -> Block.t option
(** Looks up both committed and uncommitted blocks. *)

val mem : t -> Ids.hash -> bool

val parent : t -> Block.t -> Block.t option

val children : t -> Ids.hash -> Block.t list

val size : t -> int
(** Number of uncommitted blocks currently tracked. *)

val last_committed : t -> Block.t

val committed_height : t -> Ids.height

val committed_count : t -> int
(** Committed blocks including genesis. *)

val committed_at : t -> Ids.height -> Block.t option
(** Main-chain block at the given height, if committed; this backs the
    paper's cross-node consistency check by height. *)

val extends : t -> descendant:Ids.hash -> ancestor:Ids.hash -> bool
(** True when [ancestor] is reachable from [descendant] by parent links
    (reflexively). *)

val commit :
  t -> Ids.hash -> (Block.t list * Block.t list, commit_error) result
(** [commit t h] finalizes block [h] and all its uncommitted ancestors.
    Returns [(newly_committed, forked)]: the first list is ordered by
    increasing height; the second holds all pruned conflicting blocks whose
    transactions must be returned to the mempool. *)

val fold_uncommitted : t -> ('a -> Block.t -> 'a) -> 'a -> 'a
(** Folds over all uncommitted blocks in block-hash order, so the result
    is independent of hash-table bucket layout. *)

val tip_candidates : t -> Block.t list
(** Leaves of the forest (blocks with no children), highest first;
    equal-height tips tie-break on block hash. *)
