module Node = Bamboo.Node
module Sha256 = Bamboo_crypto.Sha256

(* Timestamps enter the digest relative to the current clock and as exact
   bit patterns: two states reached at different absolute times but with
   the same pending-event offsets must collide (that is the whole point of
   state hashing), while any genuine timing difference must not. *)
let add_rel buf ~now at =
  Buffer.add_string buf (Int64.to_string (Int64.bits_of_float (at -. now)));
  Buffer.add_char buf ';'

let add_i buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let compare_inflight (a1, s1, d1, n1) (a2, s2, d2, n2) =
  match Float.compare a1 a2 with
  | 0 -> (
      match Int.compare s1 s2 with
      | 0 -> (
          match Int.compare d1 d2 with 0 -> String.compare n1 n2 | c -> c)
      | c -> c)
  | c -> c

let fingerprint ~nodes ~inflight ~timers ~now =
  let buf = Buffer.create 8192 in
  Array.iter
    (fun node ->
      Node.fingerprint node buf;
      Buffer.add_char buf '\n')
    nodes;
  (* In-flight deliveries are content-sorted: the heap's insertion order
     depends on the path taken, but two schedules that leave the same
     message set in the air must digest identically. *)
  List.iter
    (fun (at, src, dst, note) ->
      add_rel buf ~now at;
      add_i buf src;
      add_i buf dst;
      add_i buf (String.length note);
      Buffer.add_string buf note)
    (List.sort compare_inflight inflight);
  Buffer.add_char buf '\n';
  List.iter
    (fun (replica, code, at) ->
      add_i buf replica;
      add_i buf code;
      add_rel buf ~now at)
    timers;
  Sha256.digest_hex (Buffer.contents buf)
