(** The two schedule-exploration strategies over {!Scheduler.run}, plus
    counterexample minimization and replayable artifacts.

    Determinism contract (mirrors the fuzzer's): {!dfs} with the same
    scenario, window, depth and budget produces the same [stats] — state
    counts byte-identical — and the same counterexample at any [jobs]
    value; {!pct} likewise for a fixed [root_seed]. Parallelism only
    batches independent re-executions; all shared-state updates (visited
    set, sibling spawning, failure selection) happen sequentially in
    submission order. *)

type stats = {
  runs : int;  (** Complete executions simulated. *)
  states : int;
      (** Decision-states the DFS expanded (0 for PCT). With reduction on,
          each distinct fingerprint is expanded once; with [por:false] —
          the brute-force baseline, no state hashing or sleep sets —
          every visit counts, so the on/off ratio {e is} the reduction. *)
  decisions : int;  (** Recorded decision points across all runs. *)
  pruned_sleep : int;  (** Sibling branches skipped as asleep (POR). *)
  pruned_visited : int;
      (** Run suffixes truncated at an already-visited state. *)
  sleep_stops : int;  (** Runs cut short at an all-asleep decision. *)
  frontier_peak : int;  (** High-water mark of the DFS frontier. *)
  exhausted : bool;
      (** The DFS drained its frontier within [max_runs]: the bounded
          space (depth [max_decisions], the given window) is fully
          explored. Always false for PCT. *)
}

type counterexample = {
  c_minimized : Bamboo_check.Fuzz.minimized;
      (** Scenario + invariant + detail, shrunk like a fuzzer artifact. *)
  c_strategy : string;  (** ["dfs"] or ["pct"]. *)
  c_window : float;
  c_explore_after : float;  (** Start of the explored time range. *)
  c_choices : int list;  (** Minimized schedule; replays the violation. *)
  c_shrink_runs : int;  (** Replays spent shrinking. *)
}

val dfs :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Bamboo_check.Monitor.opts ->
  ?metrics:Bamboo_metrics.Registry.t ->
  ?por:bool ->
  ?explore_after:float ->
  window:float ->
  max_decisions:int ->
  max_runs:int ->
  jobs:int ->
  Bamboo_check.Scenario.t ->
  stats * counterexample option
(** Exhaustive bounded DFS over delivery schedules: wave-parallel
    re-execution with state-hash deduplication and sleep-set partial-order
    reduction. [por:false] disables {e both} (the brute-force enumeration
    baseline, for measuring the reduction). Stops at the first violation
    (in deterministic order) or when the frontier drains / [max_runs] is
    spent. *)

val pct :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Bamboo_check.Monitor.opts ->
  ?metrics:Bamboo_metrics.Registry.t ->
  ?explore_after:float ->
  window:float ->
  max_decisions:int ->
  max_runs:int ->
  d:int ->
  root_seed:int ->
  jobs:int ->
  Bamboo_check.Scenario.t ->
  stats * counterexample option
(** PCT-style randomized priority schedules for depth beyond DFS reach:
    run [index] draws per-replica priorities and [d] priority-change
    points from a stream seeded by [(root_seed, index)] alone (like
    {!Bamboo_check.Scenario.generate}), picks the highest-priority
    destination at each decision, and demotes the winner at change
    points. *)

val shrink_schedule :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Bamboo_check.Monitor.opts ->
  ?explore_after:float ->
  window:float ->
  invariant:Bamboo_check.Monitor.invariant ->
  Bamboo_check.Scenario.t ->
  int list ->
  Bamboo_check.Fuzz.minimized * int list
(** Greedy deterministic minimization of a failing schedule: truncate
    choices from the end, zero survivors, shorten the horizon, to a
    three-round fixpoint — every kept candidate re-verified by replay. *)

(** {2 Replayable artifacts}

    A counterexample serializes as a fuzzer reproducer (so existing
    tooling parses it) plus a ["schedule"] member; [bamboo check replay]
    detects the member and re-runs the schedule under controlled
    scheduling. *)

val counterexample_to_json : counterexample -> Bamboo_util.Json.t

type schedule = { window : float; explore_after : float; choices : int list }

val schedule_of_json :
  Bamboo_util.Json.t -> (schedule option, string) result
(** [Ok None] when the artifact has no ["schedule"] member (a plain
    fuzzer reproducer); [Ok (Some schedule)] otherwise. A missing
    ["exploreAfter"] member defaults to 0. *)
