(** The [bamboo check explore] subcommand: bounded model checking of
    delivery schedules over the simulator (DFS + state hashing + sleep-set
    POR, or PCT randomized priorities). Exit codes: 0 no violation, 1 a
    violation was found and a replayable counterexample written, 2 usage
    error. *)

val cmd : unit Cmdliner.Cmd.t
