open Cmdliner
module Config = Bamboo.Config
module Monitor = Bamboo_check.Monitor
module Fuzz = Bamboo_check.Fuzz
module Scenario = Bamboo_check.Scenario
module Json = Bamboo_util.Json
module Schedule = Bamboo_faults.Schedule

(* Output discipline: every line is a pure function of the flags (never of
   --jobs or wall-clock), because CI diffs the output of parallel and
   sequential runs to enforce the determinism contract. *)

let protocol_conv =
  let parse s =
    match Config.protocol_of_name s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Config.protocol_name p))

let adversary_name = function
  | Config.Honest -> "honest"
  | Config.Silence -> "silence"
  | Config.Fork -> "fork"

let adversary_conv =
  let parse = function
    | "honest" -> Ok Config.Honest
    | "silence" -> Ok Config.Silence
    | "fork" -> Ok Config.Fork
    | s -> Error (`Msg (Printf.sprintf "unknown adversary %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (adversary_name s))

let strategy_t =
  Arg.(
    value
    & opt (enum [ ("dfs", `Dfs); ("pct", `Pct) ]) `Dfs
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:
          "Exploration strategy: $(b,dfs) (exhaustive bounded DFS with \
           state hashing and sleep-set POR) or $(b,pct) (randomized \
           priority schedules).")

let protocols_t =
  let all =
    [
      Config.Hotstuff; Config.Twochain; Config.Streamlet; Config.Fasthotstuff;
    ]
  in
  Arg.(
    value
    & opt (list protocol_conv) all
    & info [ "protocols" ] ~docv:"NAMES"
        ~doc:"Comma-separated protocols to explore.")

let n_t =
  Arg.(
    value & opt int 4
    & info [ "n" ] ~docv:"N" ~doc:"Cluster size of the explored cell.")

let byz_t =
  Arg.(
    value & opt int 0
    & info [ "byz" ] ~docv:"N" ~doc:"Byzantine replica count.")

let adversary_t =
  Arg.(
    value & opt adversary_conv Config.Honest
    & info [ "adversary" ] ~docv:"NAME"
        ~doc:"Byzantine strategy: honest, silence or fork.")

let horizon_t =
  Arg.(
    value & opt float 0.6
    & info [ "horizon" ] ~docv:"SECONDS"
        ~doc:
          "Virtual runtime of each explored execution. Must leave the \
           bounded-liveness monitor its recovery budget \
           (--recover-views view timeouts).")

let timeout_t =
  Arg.(
    value & opt float 0.05
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"View timeout of the cell.")

let window_t =
  Arg.(
    value & opt float 1e-4
    & info [ "window" ] ~docv:"SECONDS"
        ~doc:
          "Commutativity window: deliveries within $(docv) of the \
           earliest pending one are concurrently deliverable and their \
           order is explored.")

let explore_after_t =
  Arg.(
    value & opt float 0.0
    & info [ "explore-after" ] ~docv:"SECONDS"
        ~doc:
          "Scope the branching to decisions at or after $(docv): earlier \
           deliveries take the natural order and cost no depth budget. \
           Use to focus the search on an interesting region, e.g. a \
           partition boundary.")

let depth_t =
  Arg.(
    value & opt int 6
    & info [ "depth" ] ~docv:"N"
        ~doc:
          "Decision-depth bound: each execution records at most $(docv) \
           scheduling decisions; beyond that it runs to the horizon in \
           default order.")

let max_runs_t =
  Arg.(
    value & opt int 5000
    & info [ "max-runs" ] ~docv:"N"
        ~doc:
          "Execution budget per protocol. DFS that drains its frontier \
           within the budget has exhausted the bounded space.")

let seed_t =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed for PCT schedules.")

let pct_d_t =
  Arg.(
    value & opt int 3
    & info [ "pct-d" ] ~docv:"D"
        ~doc:"Priority-change points per PCT schedule.")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel re-execution. Never affects \
           results: state counts and verdicts are byte-identical at any \
           value.")

let no_por_t =
  Arg.(
    value & flag
    & info [ "no-por" ]
        ~doc:
          "Brute-force baseline (DFS only): disable state-hash \
           deduplication and sleep-set partial-order reduction, for \
           measuring the reduction itself.")

let recover_views_t =
  Arg.(
    value
    & opt int Monitor.default_opts.Monitor.recover_views
    & info [ "recover-views" ] ~docv:"VIEWS"
        ~doc:"Bounded-liveness budget, in view timeouts.")

let break_voting_t =
  Arg.(
    value & flag
    & info [ "plant-broken-voting" ]
        ~doc:
          "Self-test: plant a deliberately unsafe voting rule (ignores \
           the lock) in every replica, so the search has a real \
           schedule-dependent violation to find.")

(* "AT:UNTIL:ID[,ID...]" — isolate the listed replicas from the rest of
   the cluster during [AT, UNTIL). *)
let partition_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ at; until; ids ] -> (
        match
          ( float_of_string_opt at,
            float_of_string_opt until,
            String.split_on_char ',' ids )
        with
        | Some at, Some until, ids when ids <> [] -> (
            match
              List.map int_of_string_opt ids |> List.partition Option.is_some
            with
            | some, [] ->
                Ok
                  {
                    Schedule.at;
                    until = Some until;
                    spec =
                      Schedule.Partition
                        { a = List.filter_map Fun.id some; b = [] };
                  }
            | _ -> Error (`Msg (Printf.sprintf "bad replica ids in %S" s)))
        | _ -> Error (`Msg (Printf.sprintf "bad partition spec %S" s)))
    | _ ->
        Error
          (`Msg
             (Printf.sprintf "partition spec %S is not \"AT:UNTIL:IDS\"" s))
  in
  let print fmt (e : Schedule.entry) =
    match e.Schedule.spec with
    | Schedule.Partition { a; _ } ->
        Format.fprintf fmt "%g:%g:%s" e.Schedule.at
          (Option.value ~default:0.0 e.Schedule.until)
          (String.concat "," (List.map string_of_int a))
    | _ -> ()
  in
  Arg.conv (parse, print)

let partitions_t =
  Arg.(
    value
    & opt_all partition_conv []
    & info [ "partition" ] ~docv:"AT:UNTIL:IDS"
        ~doc:
          "Isolate replicas $(i,IDS) (comma-separated) from the rest of \
           the cluster during [$(i,AT), $(i,UNTIL)) virtual seconds. \
           Repeatable. Partitions drop messages, which makes deeper \
           schedule-dependent divergence (stale certificates, forks) \
           reachable in the explored cell.")

let out_t =
  Arg.(
    value
    & opt string "bamboo-explore-counterexample.json"
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Where to write the shrunk, replayable counterexample on \
           violation.")

let pp_stats proto strategy (st : Strategy.stats) verdict =
  let strat_fields =
    match strategy with
    | `Dfs ->
        Printf.sprintf
          "states=%d pruned_sleep=%d pruned_visited=%d sleep_stops=%d \
           frontier_peak=%d exhausted=%s"
          st.Strategy.states st.Strategy.pruned_sleep
          st.Strategy.pruned_visited st.Strategy.sleep_stops
          st.Strategy.frontier_peak
          (if st.Strategy.exhausted then "yes" else "no")
    | `Pct -> "exhausted=no"
  in
  Printf.printf "explore[%s]: runs=%d decisions=%d %s verdict=%s\n"
    (Config.protocol_name proto)
    st.Strategy.runs st.Strategy.decisions strat_fields verdict

let run strategy protocols n byz adversary horizon timeout window
    explore_after depth max_runs seed pct_d jobs no_por recover_views
    break_voting partitions out =
  if protocols = [] then begin
    Printf.eprintf "bamboo: --protocols must name at least one protocol\n";
    exit 2
  end;
  if jobs < 1 then begin
    Printf.eprintf "bamboo: --jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  if depth < 1 then begin
    Printf.eprintf "bamboo: --depth must be >= 1 (got %d)\n" depth;
    exit 2
  end;
  if max_runs < 1 then begin
    Printf.eprintf "bamboo: --max-runs must be >= 1 (got %d)\n" max_runs;
    exit 2
  end;
  if window < 0.0 then begin
    Printf.eprintf "bamboo: --window must be >= 0\n";
    exit 2
  end;
  if recover_views < 1 then begin
    Printf.eprintf "bamboo: --recover-views must be >= 1 (got %d)\n"
      recover_views;
    exit 2
  end;
  let opts = { Monitor.recover_views } in
  let wrap = if break_voting then Some Fuzz.broken_voting_rule else None in
  let strategy_name = match strategy with `Dfs -> "dfs" | `Pct -> "pct" in
  Printf.printf
    "explore: strategy=%s protocols=%s n=%d byz=%d adversary=%s \
     window=%g explore_after=%g depth=%d max_runs=%d horizon=%g timeout=%g \
     seed=%d por=%s partitions=%d\n"
    strategy_name
    (String.concat "," (List.map Config.protocol_name protocols))
    n byz (adversary_name adversary) window explore_after depth max_runs
    horizon timeout seed
    (if no_por then "off" else "on")
    (List.length partitions);
  let first_cex = ref None in
  List.iter
    (fun protocol ->
      let scenario =
        try
          Scheduler.scenario ~faults:partitions ~protocol ~n ~byz_no:byz
            ~strategy:adversary ~horizon ~timeout ()
        with Invalid_argument e ->
          Printf.eprintf "bamboo: %s\n" e;
          exit 2
      in
      let stats, cex =
        match strategy with
        | `Dfs ->
            Strategy.dfs ?wrap ~opts ~por:(not no_por) ~explore_after
              ~window ~max_decisions:depth ~max_runs ~jobs scenario
        | `Pct ->
            Strategy.pct ?wrap ~opts ~explore_after ~window
              ~max_decisions:depth ~max_runs ~d:pct_d ~root_seed:seed ~jobs
              scenario
      in
      let verdict =
        match cex with
        | None -> "pass"
        | Some c ->
            Monitor.invariant_name
              c.Strategy.c_minimized.Fuzz.invariant
      in
      pp_stats protocol strategy stats verdict;
      match cex with
      | Some c when Option.is_none !first_cex -> first_cex := Some c
      | Some _ | None -> ())
    protocols;
  match !first_cex with
  | None ->
      Printf.printf "explore: %d protocol(s) explored, no violations\n"
        (List.length protocols)
  | Some c ->
      let m = c.Strategy.c_minimized in
      Printf.printf
        "explore: %s violation; shrunk schedule to %d choice(s), \
         runtime=%.2fs (%d replays): %s\n"
        (Monitor.invariant_name m.Fuzz.invariant)
        (List.length c.Strategy.c_choices)
        m.Fuzz.scenario.Scenario.config.Config.runtime c.Strategy.c_shrink_runs
        m.Fuzz.detail;
      let oc =
        try open_out out
        with Sys_error e ->
          Printf.eprintf "bamboo: cannot write counterexample: %s\n" e;
          exit 2
      in
      output_string oc
        (Json.to_string ~indent:true (Strategy.counterexample_to_json c));
      output_char oc '\n';
      close_out oc;
      Printf.printf "counterexample written to %s\n" out;
      exit 1

let cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded model checking of message-delivery schedules: enumerate \
          (DFS with state hashing and sleep-set POR) or randomize (PCT) \
          the order of concurrently deliverable messages, checking every \
          execution against the invariant oracle. Exit 0 if no violation \
          was found, 1 on a violation (a replayable counterexample is \
          written), 2 on usage errors.")
    Term.(
      const run $ strategy_t $ protocols_t $ n_t $ byz_t $ adversary_t
      $ horizon_t $ timeout_t $ window_t $ explore_after_t $ depth_t
      $ max_runs_t $ seed_t $ pct_d_t $ jobs_t $ no_por_t $ recover_views_t
      $ break_voting_t $ partitions_t $ out_t)
