module Config = Bamboo.Config
module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Sim = Bamboo_sim.Sim
module Trace = Bamboo_obs.Trace
module Scenario = Bamboo_check.Scenario
module Monitor = Bamboo_check.Monitor
module Fuzz = Bamboo_check.Fuzz

type ident = { i_src : int; i_dst : int; i_note : string }

let ident_of (c : Sim.candidate) =
  { i_src = c.Sim.c_src; i_dst = c.Sim.c_dst; i_note = c.Sim.c_note }

type forced = { f_choice : int; f_sleep : ident list }

type view = {
  v_now : float;
  v_index : int;
  v_fingerprint : string;
  v_candidates : Sim.candidate array;
  v_asleep : bool array;
}

type decision = {
  d_now : float;
  d_fingerprint : string;
  d_candidates : Sim.candidate array;
  d_asleep : bool array;
  d_choice : int;
}

type stop = Horizon | Depth | All_asleep

type outcome = {
  o_decisions : decision list;
  o_tail : int list;
  o_stop : stop;
  o_verdict : Fuzz.verdict;
  o_sim_decisions : int;
}

(* Explore cells run without client load (rate 0, so blocks are empty and
   the protocol state space is pure consensus), with deterministic network
   delays (sigma 0: every delivery of one broadcast lands at the same
   instant, which is exactly what makes the commutativity window group
   them into decisions) and no machine contention to model — the runtime's
   controlled mode abstracts the pipelines away regardless. *)
let scenario ?(label = "explore") ?(faults = []) ~protocol ~n ~byz_no
    ~strategy ~horizon ~timeout () =
  let config =
    {
      Config.default with
      Config.protocol;
      n;
      byz_no;
      strategy;
      faults;
      timeout;
      backoff = 1.0;
      runtime = horizon;
      warmup = 0.0;
      mu = 0.001;
      sigma = 0.0;
      extra_delay_mu = 0.0;
      extra_delay_sigma = 0.0;
      loss = 0.0;
      seed = 0;
      jobs = 1;
      probe_interval = 0.0;
    }
  in
  match Config.validate config with
  | Ok config -> { Scenario.label; rate = 0.0; config }
  | Error e -> invalid_arg ("Scheduler.scenario: " ^ e)

(* Matches the fuzzer's ring size; explore cells are far smaller. *)
let trace_capacity = 1 lsl 20

let run ?wrap ?opts ?(fingerprint = true) ?(explore_after = 0.0) ~window
    ~max_decisions ~prefix ~pick (s : Scenario.t) =
  let trace = Trace.ring ~capacity:trace_capacity in
  (* The sleep set, evolved along this one execution: identities whose
     delivery is provably covered by an already-explored sibling branch.
     Seeded by the [f_sleep] additions of forced prefix entries; an entry
     wakes (leaves the set) when any event executes at its destination
     replica, because such events do not commute with it. *)
  let sleep : (ident, unit) Hashtbl.t = Hashtbl.create 64 in
  let forced = ref prefix in
  (* [max_decisions] bounds the absolute tree depth, so forced prefix
     entries count against it: a run spawned at depth k records at most
     [max_decisions - k] further decisions. *)
  let depth_budget = max_decisions - List.length prefix in
  let recorded = ref [] in
  let nrec = ref 0 in
  let tail = ref [] in
  let stop = ref Horizon in
  let recording = ref true in
  let sv_ref = ref None in
  let scheduler sv =
    sv_ref := Some sv;
    let choose ~now arr =
      (* Decisions before [explore_after] take the natural order and are
         not recorded (and consume no forced choices), so the whole
         branching budget concentrates on the scoped time range — e.g.
         the boundary of an injected partition. *)
      if now < explore_after then 0
      else
        match !forced with
      | f :: rest ->
          forced := rest;
          List.iter (fun i -> Hashtbl.replace sleep i ()) f.f_sleep;
          if f.f_choice >= 0 && f.f_choice < Array.length arr then f.f_choice
          else 0
      | [] ->
          if not !recording then begin
            tail := 0 :: !tail;
            0
          end
          else if !nrec >= depth_budget then begin
            recording := false;
            stop := Depth;
            tail := [ 0 ];
            0
          end
          else begin
            let asleep =
              Array.map (fun c -> Hashtbl.mem sleep (ident_of c)) arr
            in
            if Array.for_all Fun.id asleep then begin
              (* Every candidate is covered by an explored sibling: the
                 whole subtree from here is redundant. *)
              recording := false;
              stop := All_asleep;
              tail := [ 0 ];
              0
            end
            else begin
              let fp =
                if not fingerprint then ""
                else
                  match !sv_ref with
                  | None -> ""
                  | Some sv ->
                      Statehash.fingerprint ~nodes:sv.Runtime.sv_nodes
                        ~inflight:(Sim.pending_deliveries sv.Runtime.sv_sim)
                        ~timers:(sv.Runtime.sv_timers ()) ~now
              in
              let v =
                {
                  v_now = now;
                  v_index = !nrec;
                  v_fingerprint = fp;
                  v_candidates = arr;
                  v_asleep = asleep;
                }
              in
              let k = pick v in
              let k = if k >= 0 && k < Array.length arr then k else 0 in
              recorded :=
                {
                  d_now = now;
                  d_fingerprint = fp;
                  d_candidates = arr;
                  d_asleep = asleep;
                  d_choice = k;
                }
                :: !recorded;
              incr nrec;
              k
            end
          end
    in
    let on_exec e =
      let replica =
        match e with
        | Runtime.Exec_deliver { dst; _ } -> dst
        | Runtime.Exec_timer { replica } -> replica
      in
      (* Collecting the woken identities before removal is
         order-insensitive: the same set leaves the table whatever order
         the buckets are visited in. *)
      let[@lint.allow "no-order-leak"] woken =
        Hashtbl.fold
          (fun i () acc -> if i.i_dst = replica then i :: acc else acc)
          sleep []
      in
      List.iter (Hashtbl.remove sleep) woken
    in
    {
      Runtime.sh_controller = { Sim.window; choose };
      sh_on_exec = on_exec;
    }
  in
  let result =
    Runtime.run ~config:s.Scenario.config
      ~workload:(Workload.open_loop ~rate:s.Scenario.rate ())
      ~trace ?wrap_safety:wrap ~scheduler ()
  in
  let events = Trace.events trace in
  let report =
    Monitor.evaluate ?opts ~config:s.Scenario.config ~result ~events ()
  in
  let sim_decisions =
    match !sv_ref with None -> 0 | Some sv -> Sim.decisions sv.Runtime.sv_sim
  in
  {
    o_decisions = List.rev !recorded;
    o_tail = List.rev !tail;
    o_stop = !stop;
    o_verdict = { Fuzz.scenario = s; report };
    o_sim_decisions = sim_decisions;
  }

let replay ?wrap ?opts ?explore_after ~window ~choices s =
  run ?wrap ?opts ~fingerprint:false ?explore_after ~window ~max_decisions:0
    ~prefix:(List.map (fun c -> { f_choice = c; f_sleep = [] }) choices)
    ~pick:(fun _ -> 0)
    s

let choices_of ~prefix outcome =
  List.map (fun f -> f.f_choice) prefix
  @ List.map (fun d -> d.d_choice) outcome.o_decisions
  @ outcome.o_tail
