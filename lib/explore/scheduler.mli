(** One controlled execution of the simulator under a schedule strategy.

    The scheduler drives {!Bamboo.Runtime.run}'s controlled-scheduling
    hook through three per-decision modes:

    - {e prefix replay}: forced choices (with their sleep-set additions)
      re-steer the run down a previously explored path, computing no
      fingerprints;
    - {e recording}: each further decision is fingerprinted
      ({!Statehash.fingerprint}), checked against the sleep set, submitted
      to the strategy's [pick], and recorded in full;
    - {e tail}: once the absolute decision depth — forced prefix entries
      plus recorded decisions — reaches [max_decisions] (or at an all-asleep
      decision, whose subtree is provably redundant) the run continues to
      the horizon always taking candidate 0, so the execution still ends
      in a complete, monitor-checkable run.

    [prefix choices @ recorded choices @ tail] replays this exact
    execution (see {!replay} and {!choices_of}). *)

type ident = { i_src : int; i_dst : int; i_note : string }
(** Stable identity of a deliverable message: source, destination and
    {!Bamboo_types.Message.key}. The unit of sleep-set bookkeeping. *)

val ident_of : Bamboo_sim.Sim.candidate -> ident

type forced = {
  f_choice : int;
      (** Candidate index to take at this decision; out-of-range values
          are clamped to 0 so shrunk schedules always replay. *)
  f_sleep : ident list;
      (** Identities put to sleep immediately before taking the choice:
          the siblings the DFS already explored at this decision. *)
}

type view = {
  v_now : float;
  v_index : int;  (** Index among this run's recorded decisions. *)
  v_fingerprint : string;  (** [""] when fingerprinting is disabled. *)
  v_candidates : Bamboo_sim.Sim.candidate array;
  v_asleep : bool array;  (** Per-candidate sleep-set membership. *)
}
(** What a strategy's [pick] sees at a recorded decision. *)

type decision = {
  d_now : float;
  d_fingerprint : string;
  d_candidates : Bamboo_sim.Sim.candidate array;
  d_asleep : bool array;
  d_choice : int;
}

type stop =
  | Horizon  (** The run ended while still recording. *)
  | Depth  (** [max_decisions] recorded decisions were reached. *)
  | All_asleep  (** A decision's candidates were all asleep. *)

type outcome = {
  o_decisions : decision list;  (** Recorded decisions, in order. *)
  o_tail : int list;  (** Choices taken after recording stopped (all 0). *)
  o_stop : stop;
  o_verdict : Bamboo_check.Fuzz.verdict;
  o_sim_decisions : int;  (** Total decision points in the run. *)
}

val scenario :
  ?label:string ->
  ?faults:Bamboo_faults.Schedule.t ->
  protocol:Bamboo.Config.protocol ->
  n:int ->
  byz_no:int ->
  strategy:Bamboo.Config.strategy ->
  horizon:float ->
  timeout:float ->
  unit ->
  Bamboo_check.Scenario.t
(** A model-checking cell: no client load, deterministic 1 ms delays
    (sigma 0, so one broadcast's deliveries share an instant and form
    decisions), fixed timers, and no faults unless a [faults] schedule is
    given (partitions make message loss — and hence deeper
    schedule-dependent divergence — reachable). Raises [Invalid_argument]
    if the resulting configuration does not validate. *)

val run :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Bamboo_check.Monitor.opts ->
  ?fingerprint:bool ->
  ?explore_after:float ->
  window:float ->
  max_decisions:int ->
  prefix:forced list ->
  pick:(view -> int) ->
  Bamboo_check.Scenario.t ->
  outcome
(** One complete controlled execution. [fingerprint] (default true) can
    be switched off for strategies that never hash (PCT, replay).
    Decisions earlier than [explore_after] (default 0) take the natural
    order without being recorded or consuming forced choices, scoping the
    branching budget to a time range (e.g. a partition-heal boundary).
    [pick]'s return value is clamped into the candidate range. *)

val replay :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Bamboo_check.Monitor.opts ->
  ?explore_after:float ->
  window:float ->
  choices:int list ->
  Bamboo_check.Scenario.t ->
  outcome
(** Re-runs a serialized schedule: all [choices] forced (no sleep sets,
    no fingerprints), then candidate 0 to the horizon. [explore_after]
    must match the producing run's value for the choices to line up. *)

val choices_of : prefix:forced list -> outcome -> int list
(** The full choice list that replays the outcome's execution. *)
