(** Replica-state fingerprinting for the bounded model checker.

    A fingerprint condenses the complete behavior-relevant system state —
    every replica's engine state ({!Bamboo.Node.fingerprint}), the
    in-flight controlled deliveries, and the armed timers — into one
    SHA-256 hex digest. Two executions whose fingerprints collide are in
    the same abstract state and have identical futures under identical
    subsequent schedules, so the DFS strategy prunes re-visited states.

    Timestamps are digested relative to [now] (as exact float bit
    patterns), so the same pending-work pattern reached at different
    absolute times hashes identically; in-flight deliveries are
    content-sorted to erase heap insertion order. *)

val fingerprint :
  nodes:Bamboo.Node.t array ->
  inflight:(float * int * int * string) list ->
  timers:(int * int * float) list ->
  now:float ->
  string
(** [inflight] is {!Bamboo_sim.Sim.pending_deliveries} ([(at, src, dst,
    note)]); [timers] is the runtime's armed-timer snapshot
    ([(replica, code, expiry)], already canonically sorted). *)
