module Config = Bamboo.Config
module Scenario = Bamboo_check.Scenario
module Monitor = Bamboo_check.Monitor
module Fuzz = Bamboo_check.Fuzz
module Pool = Bamboo_util.Pool
module Rng = Bamboo_util.Rng
module Json = Bamboo_util.Json
module Registry = Bamboo_metrics.Registry

type stats = {
  runs : int;
  states : int;
  decisions : int;
  pruned_sleep : int;
  pruned_visited : int;
  sleep_stops : int;
  frontier_peak : int;
  exhausted : bool;
}

type counterexample = {
  c_minimized : Fuzz.minimized;
  c_strategy : string;
  c_window : float;
  c_explore_after : float;
  c_choices : int list;
  c_shrink_runs : int;
}

let publish_metrics reg (st : stats) =
  if Registry.enabled reg then begin
    Registry.Counter.add (Registry.counter reg "explore_runs") st.runs;
    Registry.Counter.add (Registry.counter reg "explore_states") st.states;
    Registry.Counter.add (Registry.counter reg "explore_decisions") st.decisions;
    Registry.Counter.add
      (Registry.counter reg "explore_pruned_sleep")
      st.pruned_sleep;
    Registry.Counter.add
      (Registry.counter reg "explore_pruned_visited")
      st.pruned_visited;
    Registry.Gauge.set
      (Registry.gauge reg "explore_frontier_peak")
      (float_of_int st.frontier_peak)
  end

(* --- schedule shrinking --- *)

(* Trailing zeros are free to drop without a replay: a forced 0 and the
   tail mode's default 0 are the same choice. *)
let rec drop_trailing_zeros = function
  | [] -> []
  | cs -> (
      match List.rev cs with
      | 0 :: rev -> drop_trailing_zeros (List.rev rev)
      | _ -> cs)

(* Greedy minimization of a failing schedule, mirroring the fuzzer's
   shrinker: truncate choices from the end, zero the survivors, shorten
   the horizon, to a three-round fixpoint. Every kept candidate still
   violates the same invariant under single-threaded replay, so the final
   artifact is a confirmed reproducer. *)
let shrink_schedule ?wrap ?opts ?explore_after ~window ~invariant
    (s : Scenario.t) choices =
  let runs = ref 0 in
  let fails (sc : Scenario.t) cs =
    incr runs;
    let o =
      Scheduler.replay ?wrap ?opts ?explore_after ~window ~choices:cs sc
    in
    List.find_opt
      (fun (viol : Monitor.violation) -> viol.Monitor.invariant = invariant)
      o.Scheduler.o_verdict.Fuzz.report.Monitor.violations
  in
  let truncate (sc, cs) =
    let rec go cs =
      match drop_trailing_zeros cs with
      | [] -> []
      | cs -> (
          let shorter = List.filteri (fun i _ -> i < List.length cs - 1) cs in
          match fails sc shorter with
          | Some _ -> go shorter
          | None -> cs)
    in
    (sc, go cs)
  in
  let zero (sc, cs) =
    let arr = Array.of_list cs in
    Array.iteri
      (fun i c ->
        if c <> 0 then begin
          arr.(i) <- 0;
          match fails sc (Array.to_list arr) with
          | Some _ -> ()
          | None -> arr.(i) <- c
        end)
      arr;
    (sc, Array.to_list arr)
  in
  let shorten ((sc : Scenario.t), cs) =
    let rec go (sc : Scenario.t) =
      let c = sc.Scenario.config in
      let runtime = Float.max 0.05 (c.Config.runtime *. 0.6) in
      if runtime >= c.Config.runtime then sc
      else
        let cand = { sc with Scenario.config = { c with Config.runtime = runtime } } in
        match Config.validate cand.Scenario.config with
        | Error _ -> sc
        | Ok _ -> (
            match fails cand cs with Some _ -> go cand | None -> sc)
    in
    (go sc, cs)
  in
  let round x = shorten (zero (truncate x)) in
  let rec fixpoint i ((sc : Scenario.t), cs) =
    let ((sc' : Scenario.t), cs') = round (sc, cs) in
    if
      i >= 3
      || (List.equal Int.equal cs cs'
         && Float.equal sc.Scenario.config.Config.runtime
              sc'.Scenario.config.Config.runtime)
    then (sc', cs')
    else fixpoint (i + 1) (sc', cs')
  in
  let sc, cs = fixpoint 0 (s, drop_trailing_zeros choices) in
  let detail =
    match fails sc cs with
    | Some viol -> viol.Monitor.detail
    | None -> assert false (* every kept candidate fails by construction *)
  in
  ( {
      Fuzz.scenario = sc;
      invariant;
      detail;
      runs = !runs;
    },
    cs )

let make_counterexample ?wrap ?opts ?(explore_after = 0.0) ~strategy ~window
    (s : Scenario.t) ~prefix outcome =
  let invariant =
    match
      outcome.Scheduler.o_verdict.Fuzz.report.Monitor.violations
    with
    | [] -> invalid_arg "Strategy: outcome has no violation"
    | viol :: _ -> viol.Monitor.invariant
  in
  let choices = Scheduler.choices_of ~prefix outcome in
  let minimized, choices =
    shrink_schedule ?wrap ?opts ~explore_after ~window ~invariant s choices
  in
  {
    c_minimized = minimized;
    c_strategy = strategy;
    c_window = window;
    c_explore_after = explore_after;
    c_choices = choices;
    c_shrink_runs = minimized.Fuzz.runs;
  }

(* --- exhaustive DFS with sleep sets and state hashing --- *)

let dfs ?wrap ?opts ?(metrics = Registry.null) ?(por = true)
    ?(explore_after = 0.0) ~window ~max_decisions ~max_runs ~jobs
    (s : Scenario.t) =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let runs = ref 0 in
  let states = ref 0 in
  let decisions = ref 0 in
  let pruned_sleep = ref 0 in
  let pruned_visited = ref 0 in
  let sleep_stops = ref 0 in
  let frontier_peak = ref 1 in
  let failure = ref None in
  let frontier = ref [ [] ] in
  (* Waves: the whole frontier runs in parallel (each task is one
     independent re-execution), then the results merge sequentially in
     submission order. The visited set and sibling spawning live entirely
     in the merge step, so state counts, prune tallies and the chosen
     counterexample are byte-identical at any [jobs]. *)
  while !frontier <> [] && !runs < max_runs do
    let budget = max_runs - !runs in
    let wave, rest =
      if List.length !frontier <= budget then (!frontier, [])
      else
        ( List.filteri (fun i _ -> i < budget) !frontier,
          List.filteri (fun i _ -> i >= budget) !frontier )
    in
    let outcomes =
      Pool.map ~jobs
        (fun prefix ->
          (* POR-off is the brute-force baseline: no state hashing, no
             sleep sets — so skip the per-decision fingerprint cost too. *)
          Scheduler.run ?wrap ?opts ~fingerprint:por ~explore_after ~window
            ~max_decisions ~prefix
            ~pick:(fun _ -> 0)
            s)
        wave
    in
    let children = ref [] in
    List.iter2
      (fun prefix (outcome : Scheduler.outcome) ->
        incr runs;
        decisions := !decisions + List.length outcome.Scheduler.o_decisions;
        (match outcome.Scheduler.o_stop with
        | Scheduler.All_asleep -> incr sleep_stops
        | Scheduler.Horizon | Scheduler.Depth -> ());
        if Fuzz.failed outcome.Scheduler.o_verdict && Option.is_none !failure
        then failure := Some (prefix, outcome);
        (* Walk the recorded decisions, spawning unexplored siblings;
           truncate at the first already-visited state — the run that
           claimed it spawns the equivalent siblings. *)
        let rec walk rev_forced = function
          | [] -> ()
          | (d : Scheduler.decision) :: tail_ds ->
              if por && Hashtbl.mem visited d.Scheduler.d_fingerprint then
                incr pruned_visited
              else begin
                if por then Hashtbl.replace visited d.Scheduler.d_fingerprint ();
                incr states;
                let cands = d.Scheduler.d_candidates in
                let chosen = Scheduler.ident_of cands.(d.Scheduler.d_choice) in
                let explored = ref [ chosen ] in
                Array.iteri
                  (fun j c ->
                    if j <> d.Scheduler.d_choice then begin
                      if por && d.Scheduler.d_asleep.(j) then
                        incr pruned_sleep
                      else begin
                        let f_sleep =
                          if por then List.rev !explored else []
                        in
                        let forced =
                          { Scheduler.f_choice = j; f_sleep }
                        in
                        children :=
                          List.rev (forced :: rev_forced) :: !children;
                        explored := Scheduler.ident_of c :: !explored
                      end
                    end)
                  cands;
                walk
                  ({ Scheduler.f_choice = d.Scheduler.d_choice; f_sleep = [] }
                  :: rev_forced)
                  tail_ds
              end
        in
        walk (List.rev prefix) outcome.Scheduler.o_decisions)
      wave outcomes;
    frontier := rest @ List.rev !children;
    if List.length !frontier > !frontier_peak then
      frontier_peak := List.length !frontier
  done;
  let stats =
    {
      runs = !runs;
      states = !states;
      decisions = !decisions;
      pruned_sleep = !pruned_sleep;
      pruned_visited = !pruned_visited;
      sleep_stops = !sleep_stops;
      frontier_peak = !frontier_peak;
      exhausted = !frontier = [];
    }
  in
  publish_metrics metrics stats;
  let cex =
    Option.map
      (fun (prefix, outcome) ->
        make_counterexample ?wrap ?opts ~explore_after ~strategy:"dfs"
          ~window s ~prefix outcome)
      !failure
  in
  (stats, cex)

(* --- PCT-style randomized priority schedules --- *)

(* Seeded exactly like [Scenario.generate]: run [index] is a pure function
   of [(root_seed, index)], so a sweep explores the same schedules at any
   job count. *)
let pct_seed ~root_seed ~index = (root_seed * 1_000_003) + (index * 7919)

let pct ?wrap ?opts ?(metrics = Registry.null) ?(explore_after = 0.0) ~window
    ~max_decisions ~max_runs ~d ~root_seed ~jobs (s : Scenario.t) =
  let n = s.Scenario.config.Config.n in
  let outcomes =
    Pool.map ~jobs
      (fun index ->
        let rng = Rng.create ~seed:(pct_seed ~root_seed ~index) in
        (* Distinct per-replica priorities (higher wins); at each of [d]
           priority-change points the winning destination drops below
           everything seen so far, forcing a schedule perturbation. *)
        let prio = Array.init n (fun i -> float_of_int i) in
        Rng.shuffle rng prio;
        let floor = ref (-1.0) in
        let change = Array.make (max 1 max_decisions) false in
        for _ = 1 to d do
          change.(Rng.int rng (max 1 max_decisions)) <- true
        done;
        let pick (v : Scheduler.view) =
          let best = ref 0 in
          Array.iteri
            (fun j (c : Bamboo_sim.Sim.candidate) ->
              if
                prio.(c.Bamboo_sim.Sim.c_dst)
                > prio.(v.Scheduler.v_candidates.(!best).Bamboo_sim.Sim.c_dst)
              then best := j)
            v.Scheduler.v_candidates;
          if
            v.Scheduler.v_index < Array.length change
            && change.(v.Scheduler.v_index)
          then begin
            let dst = v.Scheduler.v_candidates.(!best).Bamboo_sim.Sim.c_dst in
            floor := !floor -. 1.0;
            prio.(dst) <- !floor
          end;
          !best
        in
        Scheduler.run ?wrap ?opts ~fingerprint:false ~explore_after ~window
          ~max_decisions ~prefix:[] ~pick s)
      (List.init max_runs Fun.id)
  in
  let decisions =
    List.fold_left
      (fun acc (o : Scheduler.outcome) ->
        acc + List.length o.Scheduler.o_decisions)
      0 outcomes
  in
  let failure =
    List.find_opt
      (fun (o : Scheduler.outcome) -> Fuzz.failed o.Scheduler.o_verdict)
      outcomes
  in
  let stats =
    {
      runs = List.length outcomes;
      states = 0;
      decisions;
      pruned_sleep = 0;
      pruned_visited = 0;
      sleep_stops = 0;
      frontier_peak = 0;
      exhausted = false;
    }
  in
  publish_metrics metrics stats;
  let cex =
    Option.map
      (fun outcome ->
        make_counterexample ?wrap ?opts ~explore_after ~strategy:"pct"
          ~window s ~prefix:[] outcome)
      failure
  in
  (stats, cex)

(* --- replayable counterexample artifacts --- *)

let counterexample_to_json (c : counterexample) =
  match Fuzz.artifact_to_json c.c_minimized with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "schedule",
              Json.Obj
                [
                  ("strategy", Json.String c.c_strategy);
                  ("window", Json.Float c.c_window);
                  ("exploreAfter", Json.Float c.c_explore_after);
                  ( "choices",
                    Json.List (List.map (fun i -> Json.Int i) c.c_choices) );
                ] );
          ])
  | _ -> assert false (* Fuzz.artifact_to_json always returns an object *)

type schedule = { window : float; explore_after : float; choices : int list }

let schedule_of_json json =
  match Json.member "schedule" json with
  | Json.Null -> Ok None
  | Json.Obj _ as sched -> (
      let window =
        match Json.member "window" sched with
        | Json.Float w -> Ok w
        | Json.Int w -> Ok (float_of_int w)
        | Json.Null -> Error "schedule: missing \"window\""
        | _ -> Error "schedule: \"window\" must be a number"
      in
      let explore_after =
        match Json.member "exploreAfter" sched with
        | Json.Float t -> Ok t
        | Json.Int t -> Ok (float_of_int t)
        | Json.Null -> Ok 0.0 (* absent in early artifacts *)
        | _ -> Error "schedule: \"exploreAfter\" must be a number"
      in
      match (window, explore_after) with
      | Error e, _ | _, Error e -> Error e
      | Ok window, Ok explore_after -> (
          match Json.member "choices" sched with
          | Json.List items -> (
              try
                Ok (Some { window; explore_after; choices = List.map Json.to_int items })
              with Invalid_argument _ ->
                Error "schedule: \"choices\" must be integers")
          | Json.Null -> Error "schedule: missing \"choices\""
          | _ -> Error "schedule: \"choices\" must be a list"))
  | _ -> Error "schedule must be a JSON object"
