(** Network latency model.

    Per the paper's Section V assumptions, the one-way delay between any two
    machines is normally distributed (mean [mu] = RTT/2 per direction as the
    model treats RTT ~ Normal(mu, sigma); we expose one-way sampling with
    the configured mean). On top of the base distribution the model
    supports:

    - a configurable *additional* delay (the [delay] parameter of Table I,
      itself normally distributed, e.g. "5ms +- 1ms" in Fig. 11),
    - a run-time *fluctuation window* during which the base distribution is
      replaced by a uniform draw from a given range (the responsiveness
      experiment of Fig. 15 injects 10-100 ms fluctuation for 10 s); the
      additional delay still {e composes additively} with the window's
      draw, and
    - a per-ordered-link fault plane: delay, spike, loss, duplication and
      reordering {!effect}s attached to individual [(src, dst)] pairs, plus
      partition-style blocking — the substrate of the [bamboo_faults]
      subsystem. Effects sample from their own RNG streams, so a model with
      no effects attached draws exactly the base stream.

    Client-to-replica round trips use {!client_rtt}. *)

type t

val create :
  rng:Bamboo_util.Rng.t ->
  mu:float ->
  sigma:float ->
  ?extra_mu:float ->
  ?extra_sigma:float ->
  unit ->
  t
(** [mu]/[sigma] in seconds; [extra_mu]/[extra_sigma] default to 0. *)

val set_extra_delay : t -> mu:float -> sigma:float -> unit
(** Changes the additional-delay distribution at run time (the paper's
    "slow" command). *)

val set_fluctuation : t -> from_t:float -> until_t:float -> lo:float -> hi:float -> unit
(** During virtual-time window [from_t, until_t), the {e base} one-way
    delay is drawn uniformly from [lo, hi) instead of the normal
    distribution. The additional delay of {!set_extra_delay} still adds on
    top (the window models the wire fluctuating, not the configured WAN
    distance disappearing). *)

val clear_fluctuation : t -> unit

val set_loss : t -> rate:float -> unit
(** Independent per-message drop probability in [0, 1), applied to every
    link. Default 0. *)

val drops : t -> now:float -> bool
(** Samples whether one transmission is lost to the run-wide loss rate. *)

val one_way : t -> now:float -> src:int -> dst:int -> float
(** Sampled one-way delay for a message sent at virtual time [now] over
    the ordered link [src -> dst]: the base (or fluctuation-window) draw,
    the configured extra delay, plus every delay-shaped effect currently
    attached to the pair. Always non-negative. *)

val client_rtt : t -> now:float -> float
(** Sampled client-replica round-trip time (clients are outside the
    replica fault plane). *)

val mean_one_way : t -> float
(** Expected one-way delay under the base + extra distribution (ignoring
    fluctuation windows and link effects); used by the analytic model. *)

(** {2 Per-link fault plane}

    Ordered pairs: an effect attached to [src=0, dst=1] leaves [1 -> 0]
    untouched, so asymmetric faults are expressed directly. All sampling
    draws from the effect's own RNG stream, never from the model's base
    stream. *)

type effect_kind =
  | Extra_delay of { mu : float; sigma : float }
      (** Additive normally-distributed delay per message. *)
  | Spike of { lo : float; hi : float }
      (** Additive delay drawn uniformly from [lo, hi) per message. *)
  | Drop of float  (** Independent drop probability, composed with the
                       run-wide loss rate. *)
  | Duplicate of float
      (** Probability of delivering one extra copy; the copy's delay is an
          independent base-distribution sample from the effect's stream,
          so copies can overtake originals. *)
  | Reorder of { prob : float; jitter : float }
      (** With probability [prob], adds uniform delay in [0, jitter). *)

type effect

val effect : rng:Bamboo_util.Rng.t -> effect_kind -> effect
(** A reusable effect handle; attaching one handle to several pairs shares
    its RNG stream across them (one stream per fault source). *)

val attach : t -> src:int -> dst:int -> effect -> unit

val detach : t -> src:int -> dst:int -> effect -> unit
(** Removes a previously attached handle (by identity); no-op if absent. *)

val block : t -> src:int -> dst:int -> unit
(** Blocks the ordered link entirely (partition). Nested blocks stack:
    the link heals when every {!unblock} matched its {!block}. *)

val unblock : t -> src:int -> dst:int -> unit

val blocked : t -> src:int -> dst:int -> bool

val link_drops : t -> src:int -> dst:int -> bool
(** Samples every [Drop] effect on the pair; true if any fires. *)

val link_copies : t -> src:int -> dst:int -> float list
(** Samples every [Duplicate] effect on the pair; returns the one-way
    delays of the extra copies to deliver. *)

type stats = {
  sends : int;  (** one-way delay samples drawn (messages sent) *)
  base_drops : int;  (** messages lost to the base loss rate *)
  fault_drops : int;  (** messages lost to per-link [Drop] effects *)
  duplicates : int;  (** extra copies produced by [Duplicate] effects *)
  fault_activations : int;  (** [attach] + [block] calls over the run *)
}

val stats : t -> stats
(** Observe-only tallies for the metrics layer; reading them never
    advances any RNG stream. *)
