(** Discrete-event simulation engine.

    A virtual clock plus an event heap of timestamped callbacks. Events
    scheduled for the same instant fire in scheduling order, which makes
    runs bit-reproducible for a fixed seed. Time is in seconds.

    The event queue is a monomorphic float-keyed binary heap in
    structure-of-arrays layout (unboxed timestamps, primitive
    comparisons, FIFO sequence tie-break), specialized away from the
    generic [Bamboo_util.Heap] because every simulated message hop, CPU
    charge and timer passes through it. *)

type t

val create : unit -> t

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0. *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit
(** [schedule_at t ~at f] runs [f] at absolute time [at] ([now] if already
    past). *)

val run_until : t -> float -> unit
(** [run_until t horizon] processes events in timestamp order until the
    queue is empty or the next event is after [horizon]; the clock ends at
    [horizon] or at the last processed event, whichever is later. *)

val run_to_completion : ?max_events:int -> t -> unit
(** Drains the queue entirely; raises [Failure] after [max_events]
    (default 100 million) as a runaway guard. *)

val pending : t -> int
(** Number of scheduled events not yet fired. *)

val fired : t -> int
(** Total events executed so far; an instrumentation-independent measure
    of simulation work, used by the observability layer's zero-overhead
    checks. *)

val pushed : t -> int
(** Total events ever scheduled (heap pushes). *)

val peak_depth : t -> int
(** High-water mark of the event heap. *)
