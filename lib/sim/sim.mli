(** Discrete-event simulation engine.

    A virtual clock plus an event heap of timestamped callbacks. Events
    scheduled for the same instant fire in scheduling order, which makes
    runs bit-reproducible for a fixed seed. Time is in seconds.

    The event queue is a monomorphic float-keyed binary heap in
    structure-of-arrays layout (unboxed timestamps, primitive
    comparisons, FIFO sequence tie-break), specialized away from the
    generic [Bamboo_util.Heap] because every simulated message hop, CPU
    charge and timer passes through it. *)

type t

type candidate = {
  c_at : float;  (** Scheduled timestamp of the delivery. *)
  c_src : int;
  c_dst : int;
  c_note : string;  (** Stable message identity ({!Bamboo_types.Message.key}). *)
}
(** One deliverable message event offered to a scheduling strategy. *)

type controller = {
  window : float;
      (** Commutativity-window width in virtual seconds: tagged deliveries
          whose timestamps fall within [window] of the earliest one are
          considered concurrently deliverable. *)
  choose : now:float -> candidate array -> int;
      (** Picks which candidate fires next. The array is sorted by
          (timestamp, scheduling sequence) — index 0 is what the
          uncontrolled heap would fire — and always has at least two
          entries. Must return a valid index; the chosen delivery fires
          at the window base (the earliest candidate's timestamp), i.e.
          choosing a later candidate models that message arriving early. *)
}
(** A pluggable delivery-order strategy for {!run_until}. Only events
    scheduled through {!schedule_delivery} participate; everything else
    (timers, machine completions, workload ticks) fires in plain heap
    order. Used by the [bamboo_explore] model checker. *)

val create : unit -> t

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0. *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit
(** [schedule_at t ~at f] runs [f] at absolute time [at] ([now] if already
    past). *)

val run_until : t -> float -> unit
(** [run_until t horizon] processes events in timestamp order until the
    queue is empty or the next event is after [horizon]; the clock ends at
    [horizon] or at the last processed event, whichever is later.

    With a {!controller} installed, each step where the minimum event is a
    tagged delivery and at least one other tagged delivery lies within the
    commutativity window becomes a decision point: the controller's
    [choose] picks the firing order instead of the fixed heap order. With
    no controller the loop is exactly the pre-hook one — bit-identical
    behavior at zero per-event cost. *)

(** {2 Controlled scheduling} *)

val set_controller : t -> controller option -> unit
(** Installs (or removes, with [None]) the delivery-order controller.
    Install before scheduling deliveries: only events tagged by
    {!schedule_delivery} after installation participate in decisions. *)

val schedule_delivery :
  t -> delay:float -> src:int -> dst:int -> note:string -> (unit -> unit) -> unit
(** Like {!schedule}, but tags the event as a message delivery
    ([src -> dst], identity [note]) eligible for controlled reordering.
    Exactly {!schedule} when no controller is installed. *)

val pending_deliveries : t -> (float * int * int * string) list
(** In-flight tagged deliveries [(at, src, dst, note)], sorted by
    (timestamp, scheduling sequence). Always [[]] without a controller;
    the model checker folds this into its state fingerprint. *)

val decisions : t -> int
(** Decision points presented to the controller so far (0 without one). *)

(** {2 Probing helpers} *)

val peek_at : t -> float option
(** Timestamp of the next event without firing it; [None] on an empty
    queue. Useful to probes and schedulers that must look ahead without
    perturbing the run. *)

val drain_window : t -> width:float -> int
(** [drain_window t ~width] fires every event with timestamp at most
    [peek_at t + width] — including events those firings schedule inside
    the window — in plain heap order, bypassing any controller, and
    returns how many fired. 0 on an empty queue; [width = 0.0] drains
    exactly the events sharing the next timestamp. Raises
    [Invalid_argument] on negative [width]. *)

val run_to_completion : ?max_events:int -> t -> unit
(** Drains the queue entirely; raises [Failure] after [max_events]
    (default 100 million) as a runaway guard. *)

val pending : t -> int
(** Number of scheduled events not yet fired. *)

val fired : t -> int
(** Total events executed so far; an instrumentation-independent measure
    of simulation work, used by the observability layer's zero-overhead
    checks. *)

val pushed : t -> int
(** Total events ever scheduled (heap pushes). *)

val peak_depth : t -> int
(** High-water mark of the event heap. *)
