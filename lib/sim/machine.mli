(** Per-node machine model (paper §V-B1): each machine is a single CPU plus
    a NIC, each modelled as a FIFO single-server queue.

    CPU work (signing, verifying, batching) and NIC serialization
    (bytes / bandwidth, charged once outbound at the sender and once
    inbound at the receiver — the paper's [t_NIC = 2m/b]) are scheduled on
    the owning queue; completion times account for queueing behind earlier
    work.

    Each queue additionally tracks its depth (jobs admitted but not yet
    completed) and cumulative busy time, feeding the observability layer's
    probes; an optional service hook reports every service span (for
    timeline tracing) without altering scheduling. *)

type queue = [ `Cpu | `Nic_out | `Nic_in ]

type t

val create : sim:Sim.t -> bandwidth:float -> t
(** [bandwidth] in bytes/second. *)

val bandwidth : t -> float

val set_speed : t -> float -> unit
(** Sets the CPU speed factor (default 1.0): every subsequent {!cpu}
    duration is divided by it, so a factor of 0.5 halves the machine's
    effective speed. The fault subsystem's [slow] fault drives this.
    Raises [Invalid_argument] unless positive. *)

val speed : t -> float

val cpu : t -> duration:float -> (unit -> unit) -> unit
(** [cpu m ~duration k] enqueues [duration] seconds of CPU work and calls
    [k] when it completes. Zero-duration work still respects FIFO order. *)

val nic_out : t -> bytes:int -> (unit -> unit) -> unit
(** Serializes [bytes] through the outbound NIC, then calls [k]. *)

val nic_in : t -> bytes:int -> (unit -> unit) -> unit
(** Same for the inbound NIC. *)

val cpu_busy_until : t -> float
(** Absolute virtual time at which the CPU queue drains; used by tests and
    utilization metrics. *)

val nic_out_busy_until : t -> float
val nic_in_busy_until : t -> float

val cpu_busy_seconds : t -> float
(** Total CPU seconds consumed so far. *)

val nic_out_busy_seconds : t -> float
val nic_in_busy_seconds : t -> float

val queue_depth : t -> queue -> int
(** Jobs admitted to the queue and not yet completed (including the one
    in service). *)

val ops : t -> queue -> int
(** Total jobs ever admitted to the queue. *)

val peak_depth : t -> queue -> int
(** High-water mark of {!queue_depth}. *)

val set_service_hook :
  t -> (queue:queue -> start:float -> duration:float -> unit) option -> unit
(** Installs (or clears) a callback invoked synchronously for every
    admitted job with its computed service window. The hook must not
    schedule simulator events; it exists to feed trace timelines. *)
