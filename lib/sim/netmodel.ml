module Rng = Bamboo_util.Rng
module Dist = Bamboo_util.Dist

type fluctuation = { from_t : float; until_t : float; lo : float; hi : float }

type effect_kind =
  | Extra_delay of { mu : float; sigma : float }
  | Spike of { lo : float; hi : float }
  | Drop of float
  | Duplicate of float
  | Reorder of { prob : float; jitter : float }

type effect = { rng : Rng.t; kind : effect_kind }

type link = { mutable blocked : int; mutable effects : effect list }

type t = {
  rng : Rng.t;
  mu : float;
  sigma : float;
  mutable extra_mu : float;
  mutable extra_sigma : float;
  mutable fluctuation : fluctuation option;
  mutable loss : float;
  links : (int, link) Hashtbl.t;  (* keyed by [link_key ~src ~dst] *)
  mutable n_blocked : int; (* pairs currently blocked (counting overlaps) *)
  mutable n_effects : int; (* attached effects across all pairs *)
  (* observe-only tallies, surfaced through [stats] *)
  mutable n_sends : int;
  mutable n_base_drops : int;
  mutable n_fault_drops : int;
  mutable n_duplicates : int;
  mutable n_activations : int; (* attach + block calls over the run *)
}

type stats = {
  sends : int;
  base_drops : int;
  fault_drops : int;
  duplicates : int;
  fault_activations : int;
}

let create ~rng ~mu ~sigma ?(extra_mu = 0.0) ?(extra_sigma = 0.0) () =
  if mu < 0.0 || sigma < 0.0 then invalid_arg "Netmodel.create: negative parameter";
  {
    rng;
    mu;
    sigma;
    extra_mu;
    extra_sigma;
    fluctuation = None;
    loss = 0.0;
    links = Hashtbl.create 64;
    n_blocked = 0;
    n_effects = 0;
    n_sends = 0;
    n_base_drops = 0;
    n_fault_drops = 0;
    n_duplicates = 0;
    n_activations = 0;
  }

let stats t =
  {
    sends = t.n_sends;
    base_drops = t.n_base_drops;
    fault_drops = t.n_fault_drops;
    duplicates = t.n_duplicates;
    fault_activations = t.n_activations;
  }

let set_loss t ~rate =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Netmodel.set_loss: rate must be in [0, 1)";
  t.loss <- rate

let drops t ~now:_ =
  let dropped = t.loss > 0.0 && Rng.float t.rng 1.0 < t.loss in
  if dropped then t.n_base_drops <- t.n_base_drops + 1;
  dropped

let set_extra_delay t ~mu ~sigma =
  t.extra_mu <- mu;
  t.extra_sigma <- sigma

let set_fluctuation t ~from_t ~until_t ~lo ~hi =
  t.fluctuation <- Some { from_t; until_t; lo; hi }

let clear_fluctuation t = t.fluctuation <- None

(* Base one-way delay: the normal base distribution, replaced by the
   uniform draw inside a fluctuation window; the configured extra delay
   (the paper's "slow" command) composes additively with either. *)
let base_sample t ~now =
  let base =
    match t.fluctuation with
    | Some f when now >= f.from_t && now < f.until_t ->
        Dist.uniform t.rng ~lo:f.lo ~hi:f.hi
    | Some _ | None -> Dist.normal_pos t.rng ~mu:t.mu ~sigma:t.sigma
  in
  if t.extra_mu > 0.0 || t.extra_sigma > 0.0 then
    base +. Dist.normal_pos t.rng ~mu:t.extra_mu ~sigma:t.extra_sigma
  else base

(* --- per-(src,dst) fault plane ---

   Every stochastic effect carries its own RNG stream (supplied by the
   fault engine), so attaching or sampling effects never advances [t.rng]:
   the base delay/loss streams of a faulted run stay aligned with the
   fault-free run, and a run with no effects attached is bit-identical to
   one built before this machinery existed. *)

let effect ~rng kind = { rng; kind }

(* Pack the (src, dst) pair into one immediate int so link lookups never
   hash a boxed tuple. Node ids are small (Table I tops out at n = 128),
   so 16 bits per endpoint is comfortable. *)
let link_key ~src ~dst = (src lsl 16) lor (dst land 0xffff)

let link t ~src ~dst =
  match Hashtbl.find_opt t.links (link_key ~src ~dst) with
  | Some l -> l
  | None ->
      let l = { blocked = 0; effects = [] } in
      Hashtbl.add t.links (link_key ~src ~dst) l;
      l

let find_link t ~src ~dst =
  if t.n_blocked = 0 && t.n_effects = 0 then None
  else Hashtbl.find_opt t.links (link_key ~src ~dst)

let attach t ~src ~dst e =
  let l = link t ~src ~dst in
  l.effects <- l.effects @ [ e ];
  t.n_effects <- t.n_effects + 1;
  t.n_activations <- t.n_activations + 1

let detach t ~src ~dst e =
  match Hashtbl.find_opt t.links (link_key ~src ~dst) with
  | None -> ()
  | Some l ->
      let before = List.length l.effects in
      l.effects <- List.filter (fun e' -> e' != e) l.effects;
      t.n_effects <- t.n_effects - (before - List.length l.effects)

let block t ~src ~dst =
  let l = link t ~src ~dst in
  l.blocked <- l.blocked + 1;
  t.n_blocked <- t.n_blocked + 1;
  t.n_activations <- t.n_activations + 1

let unblock t ~src ~dst =
  match Hashtbl.find_opt t.links (link_key ~src ~dst) with
  | Some l when l.blocked > 0 ->
      l.blocked <- l.blocked - 1;
      t.n_blocked <- t.n_blocked - 1
  | Some _ | None -> ()

let blocked t ~src ~dst =
  match find_link t ~src ~dst with Some l -> l.blocked > 0 | None -> false

let one_way t ~now ~src ~dst =
  t.n_sends <- t.n_sends + 1;
  let base = base_sample t ~now in
  match find_link t ~src ~dst with
  | None -> base
  | Some l ->
      List.fold_left
        (fun acc e ->
          match e.kind with
          | Extra_delay { mu; sigma } ->
              acc +. Dist.normal_pos e.rng ~mu ~sigma
          | Spike { lo; hi } -> acc +. Dist.uniform e.rng ~lo ~hi
          | Reorder { prob; jitter } ->
              if Rng.float e.rng 1.0 < prob then acc +. Rng.float e.rng jitter
              else acc
          | Drop _ | Duplicate _ -> acc)
        base l.effects

let link_drops t ~src ~dst =
  match find_link t ~src ~dst with
  | None -> false
  | Some l ->
      (* Sample every active loss effect (composition of independent
         drops), so overlapping faults keep their own streams aligned. *)
      let dropped =
        List.fold_left
          (fun dropped e ->
            match e.kind with
            | Drop p -> Rng.float e.rng 1.0 < p || dropped
            | Extra_delay _ | Spike _ | Duplicate _ | Reorder _ -> dropped)
          false l.effects
      in
      if dropped then t.n_fault_drops <- t.n_fault_drops + 1;
      dropped

let link_copies t ~src ~dst =
  match find_link t ~src ~dst with
  | None -> []
  | Some l ->
      let copies =
        List.fold_left
        (fun copies e ->
          match e.kind with
          | Duplicate p when Rng.float e.rng 1.0 < p ->
              (* The copy's delay is an independent base-distribution
                 sample from the duplicating fault's own stream. *)
              Dist.normal_pos e.rng ~mu:t.mu ~sigma:t.sigma :: copies
            | Duplicate _ | Extra_delay _ | Spike _ | Drop _ | Reorder _ ->
              copies)
          [] l.effects
      in
      t.n_duplicates <- t.n_duplicates + List.length copies;
      copies

let client_rtt t ~now = 2.0 *. base_sample t ~now

let mean_one_way t = t.mu +. t.extra_mu
