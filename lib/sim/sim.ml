module Heap = Bamboo_util.Heap

type event = { at : float; fn : unit -> unit }

type t = { mutable clock : float; events : event Heap.t; mutable fired : int }

let create () =
  {
    clock = 0.0;
    events = Heap.create ~cmp:(fun a b -> compare a.at b.at) ();
    fired = 0;
  }

let now t = t.clock

let schedule_at t ~at fn =
  let at = Float.max at t.clock in
  Heap.push t.events { at; fn }

let schedule t ~delay fn = schedule_at t ~at:(t.clock +. Float.max 0.0 delay) fn

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | Some ev when ev.at <= horizon ->
        (match Heap.pop t.events with
        | Some ev ->
            t.clock <- Float.max t.clock ev.at;
            t.fired <- t.fired + 1;
            ev.fn ()
        | None -> assert false)
    | Some _ | None -> continue := false
  done;
  t.clock <- Float.max t.clock horizon

let run_to_completion ?(max_events = 100_000_000) t =
  let count = ref 0 in
  let rec loop () =
    match Heap.pop t.events with
    | None -> ()
    | Some ev ->
        incr count;
        if !count > max_events then
          failwith "Sim.run_to_completion: event budget exhausted";
        t.clock <- Float.max t.clock ev.at;
        t.fired <- t.fired + 1;
        ev.fn ();
        loop ()
  in
  loop ()

let pending t = Heap.length t.events
let fired t = t.fired
