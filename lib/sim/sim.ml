(* The event queue is the hottest structure in the simulator: every
   message hop, CPU charge and timer is a push/pop pair. Instead of the
   generic polymorphic [Bamboo_util.Heap] (closure-based comparator,
   polymorphic [compare] on boxed floats, one heap-allocated entry per
   event), the queue is a monomorphic binary min-heap in
   structure-of-arrays layout: timestamps live in a flat unboxed [float
   array], insertion sequence numbers (the FIFO tie-break that keeps
   replay deterministic) in an [int array], and callbacks in a separate
   array whose vacated slots are reset to a shared no-op so fired
   closures are collectable immediately. Comparisons are primitive float
   and int operations — no [cmp] closure, no polymorphic dispatch. *)
module Eq = struct
  type t = {
    mutable at : float array; (* flat, unboxed *)
    mutable seq : int array;
    mutable fn : (unit -> unit) array;
    mutable len : int;
    mutable next_seq : int;
  }

  let nop () = ()

  let initial = 256

  let create () =
    {
      at = Array.make initial 0.0;
      seq = Array.make initial 0;
      fn = Array.make initial nop;
      len = 0;
      next_seq = 0;
    }

  let length q = q.len

  (* Strict (key, seq) lexicographic order. Keys are never NaN: the
     scheduler clamps them against the monotone clock. *)
  let less q i j =
    let ai = Array.unsafe_get q.at i and aj = Array.unsafe_get q.at j in
    ai < aj
    || (ai = aj && Array.unsafe_get q.seq i < Array.unsafe_get q.seq j)

  let swap q i j =
    let a = q.at.(i) in
    q.at.(i) <- q.at.(j);
    q.at.(j) <- a;
    let s = q.seq.(i) in
    q.seq.(i) <- q.seq.(j);
    q.seq.(j) <- s;
    let f = q.fn.(i) in
    q.fn.(i) <- q.fn.(j);
    q.fn.(j) <- f

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less q i parent then begin
        swap q i parent;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < q.len && less q l !smallest then smallest := l;
    if r < q.len && less q r !smallest then smallest := r;
    if !smallest <> i then begin
      swap q i !smallest;
      sift_down q !smallest
    end

  let grow q =
    let cap = Array.length q.at in
    let at = Array.make (2 * cap) 0.0 in
    Array.blit q.at 0 at 0 cap;
    q.at <- at;
    let seq = Array.make (2 * cap) 0 in
    Array.blit q.seq 0 seq 0 cap;
    q.seq <- seq;
    let fn = Array.make (2 * cap) nop in
    Array.blit q.fn 0 fn 0 cap;
    q.fn <- fn

  let push q ~at fn =
    if q.len = Array.length q.at then grow q;
    let i = q.len in
    q.at.(i) <- at;
    q.seq.(i) <- q.next_seq;
    q.fn.(i) <- fn;
    q.next_seq <- q.next_seq + 1;
    q.len <- q.len + 1;
    sift_up q i

  (* Only meaningful when [length q > 0]. *)
  let min_at q = q.at.(0)

  (* Removes the root and returns its callback; callers must have checked
     [length q > 0]. *)
  let take q =
    let fn = q.fn.(0) in
    let last = q.len - 1 in
    q.len <- last;
    q.at.(0) <- q.at.(last);
    q.seq.(0) <- q.seq.(last);
    q.fn.(0) <- q.fn.(last);
    q.fn.(last) <- nop;
    if last > 0 then sift_down q 0;
    fn
end

type t = {
  mutable clock : float;
  events : Eq.t;
  mutable fired : int;
  mutable pushed : int;
  mutable peak : int; (* high-water mark of the event heap *)
}

let create () =
  { clock = 0.0; events = Eq.create (); fired = 0; pushed = 0; peak = 0 }

let now t = t.clock

let schedule_at t ~at fn =
  let at = Float.max at t.clock in
  Eq.push t.events ~at fn;
  t.pushed <- t.pushed + 1;
  let len = Eq.length t.events in
  if len > t.peak then t.peak <- len

let schedule t ~delay fn = schedule_at t ~at:(t.clock +. Float.max 0.0 delay) fn

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if Eq.length t.events > 0 && Eq.min_at t.events <= horizon then begin
      let at = Eq.min_at t.events in
      let fn = Eq.take t.events in
      t.clock <- Float.max t.clock at;
      t.fired <- t.fired + 1;
      fn ()
    end
    else continue := false
  done;
  t.clock <- Float.max t.clock horizon

let run_to_completion ?(max_events = 100_000_000) t =
  let count = ref 0 in
  while Eq.length t.events > 0 do
    incr count;
    if !count > max_events then
      failwith "Sim.run_to_completion: event budget exhausted";
    let at = Eq.min_at t.events in
    let fn = Eq.take t.events in
    t.clock <- Float.max t.clock at;
    t.fired <- t.fired + 1;
    fn ()
  done

let pending t = Eq.length t.events
let fired t = t.fired
let pushed t = t.pushed
let peak_depth t = t.peak
