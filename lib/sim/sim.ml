(* The event queue is the hottest structure in the simulator: every
   message hop, CPU charge and timer is a push/pop pair. Instead of the
   generic polymorphic [Bamboo_util.Heap] (closure-based comparator,
   polymorphic [compare] on boxed floats, one heap-allocated entry per
   event), the queue is a monomorphic binary min-heap in
   structure-of-arrays layout: timestamps live in a flat unboxed [float
   array], insertion sequence numbers (the FIFO tie-break that keeps
   replay deterministic) in an [int array], and callbacks in a separate
   array whose vacated slots are reset to a shared no-op so fired
   closures are collectable immediately. Comparisons are primitive float
   and int operations — no [cmp] closure, no polymorphic dispatch. *)
module Eq = struct
  type t = {
    mutable at : float array; (* flat, unboxed *)
    mutable seq : int array;
    mutable fn : (unit -> unit) array;
    mutable len : int;
    mutable next_seq : int;
  }

  let nop () = ()

  let initial = 256

  let create () =
    {
      at = Array.make initial 0.0;
      seq = Array.make initial 0;
      fn = Array.make initial nop;
      len = 0;
      next_seq = 0;
    }

  let length q = q.len

  (* Strict (key, seq) lexicographic order. Keys are never NaN: the
     scheduler clamps them against the monotone clock. *)
  let less q i j =
    let ai = Array.unsafe_get q.at i and aj = Array.unsafe_get q.at j in
    ai < aj
    || (ai = aj && Array.unsafe_get q.seq i < Array.unsafe_get q.seq j)

  let swap q i j =
    let a = q.at.(i) in
    q.at.(i) <- q.at.(j);
    q.at.(j) <- a;
    let s = q.seq.(i) in
    q.seq.(i) <- q.seq.(j);
    q.seq.(j) <- s;
    let f = q.fn.(i) in
    q.fn.(i) <- q.fn.(j);
    q.fn.(j) <- f

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less q i parent then begin
        swap q i parent;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < q.len && less q l !smallest then smallest := l;
    if r < q.len && less q r !smallest then smallest := r;
    if !smallest <> i then begin
      swap q i !smallest;
      sift_down q !smallest
    end

  let grow q =
    let cap = Array.length q.at in
    let at = Array.make (2 * cap) 0.0 in
    Array.blit q.at 0 at 0 cap;
    q.at <- at;
    let seq = Array.make (2 * cap) 0 in
    Array.blit q.seq 0 seq 0 cap;
    q.seq <- seq;
    let fn = Array.make (2 * cap) nop in
    Array.blit q.fn 0 fn 0 cap;
    q.fn <- fn

  let push q ~at fn =
    if q.len = Array.length q.at then grow q;
    let i = q.len in
    q.at.(i) <- at;
    q.seq.(i) <- q.next_seq;
    q.fn.(i) <- fn;
    q.next_seq <- q.next_seq + 1;
    q.len <- q.len + 1;
    sift_up q i

  (* Only meaningful when [length q > 0]. *)
  let min_at q = q.at.(0)

  (* Removes the root and returns its callback; callers must have checked
     [length q > 0]. *)
  let take q =
    let fn = q.fn.(0) in
    let last = q.len - 1 in
    q.len <- last;
    q.at.(0) <- q.at.(last);
    q.seq.(0) <- q.seq.(last);
    q.fn.(0) <- q.fn.(last);
    q.fn.(last) <- nop;
    if last > 0 then sift_down q 0;
    fn

  (* Removes the entry at heap index [i] (controlled scheduling picks
     events other than the root) and returns its callback. The vacated
     slot takes the last entry, which may need to move either way. *)
  let remove q i =
    let fn = q.fn.(i) in
    let last = q.len - 1 in
    q.len <- last;
    if i < last then begin
      q.at.(i) <- q.at.(last);
      q.seq.(i) <- q.seq.(last);
      q.fn.(i) <- q.fn.(last)
    end;
    q.fn.(last) <- nop;
    if i < last then begin
      sift_down q i;
      sift_up q i
    end;
    fn
end

(* --- controlled scheduling --- *)

type candidate = { c_at : float; c_src : int; c_dst : int; c_note : string }

type controller = {
  window : float;
  choose : now:float -> candidate array -> int;
}

type delivery = { d_src : int; d_dst : int; d_note : string }

(* Tags live in a side table keyed by heap sequence number rather than a
   fourth heap array: the uncontrolled hot path never touches them, so
   the disabled simulator is byte-for-byte the pre-hook one. *)
type ctl = {
  cfg : controller;
  tags : (int, delivery) Hashtbl.t;
  mutable decisions : int;
}

type t = {
  mutable clock : float;
  events : Eq.t;
  mutable fired : int;
  mutable pushed : int;
  mutable peak : int; (* high-water mark of the event heap *)
  mutable ctl : ctl option;
}

let create () =
  {
    clock = 0.0;
    events = Eq.create ();
    fired = 0;
    pushed = 0;
    peak = 0;
    ctl = None;
  }

let now t = t.clock

let schedule_at t ~at fn =
  let at = Float.max at t.clock in
  Eq.push t.events ~at fn;
  t.pushed <- t.pushed + 1;
  let len = Eq.length t.events in
  if len > t.peak then t.peak <- len

let schedule t ~delay fn = schedule_at t ~at:(t.clock +. Float.max 0.0 delay) fn

let set_controller t cfg =
  t.ctl <-
    (match cfg with
    | None -> None
    | Some cfg -> Some { cfg; tags = Hashtbl.create 64; decisions = 0 })

let decisions t = match t.ctl with None -> 0 | Some c -> c.decisions

let schedule_delivery t ~delay ~src ~dst ~note fn =
  match t.ctl with
  | None -> schedule t ~delay fn
  | Some c ->
      let seq = t.events.Eq.next_seq in
      schedule t ~delay fn;
      Hashtbl.replace c.tags seq { d_src = src; d_dst = dst; d_note = note }

let pending_deliveries t =
  match t.ctl with
  | None -> []
  | Some c ->
      let q = t.events in
      let acc = ref [] in
      for i = 0 to Eq.length q - 1 do
        match Hashtbl.find_opt c.tags q.Eq.seq.(i) with
        | Some d -> acc := (q.Eq.at.(i), q.Eq.seq.(i), d) :: !acc
        | None -> ()
      done;
      List.map
        (fun (at, _, d) -> (at, d.d_src, d.d_dst, d.d_note))
        (List.sort
           (fun (a1, s1, _) (a2, s2, _) ->
             match Float.compare a1 a2 with
             | 0 -> Int.compare s1 s2
             | c -> c)
           !acc)

let fire t ~at fn =
  t.clock <- Float.max t.clock at;
  t.fired <- t.fired + 1;
  fn ()

(* One step of the controlled loop. A decision point forms when the
   minimum event is a tagged delivery and at least one other tagged
   delivery falls inside [t_min, t_min + window]: the candidate set
   (sorted by (timestamp, sequence), so its order is the uncontrolled
   firing order) goes to the strategy, and the chosen delivery fires at
   the window base [t_min] — picking a later candidate models that
   message arriving early, so permutations of same-instant candidates
   reconverge to identical states. Untagged events (timers, machine
   completions, workload ticks) always fire in plain heap order. *)
let controlled_step t ctl horizon =
  let q = t.events in
  if Eq.length q = 0 || Eq.min_at q > horizon then false
  else begin
    let t0 = Eq.min_at q in
    if not (Hashtbl.mem ctl.tags q.Eq.seq.(0)) then begin
      let fn = Eq.take q in
      fire t ~at:t0 fn;
      true
    end
    else begin
      let limit = t0 +. Float.max 0.0 ctl.cfg.window in
      let cands = ref [] in
      for i = 0 to Eq.length q - 1 do
        if q.Eq.at.(i) <= limit then
          match Hashtbl.find_opt ctl.tags q.Eq.seq.(i) with
          | Some d -> cands := (q.Eq.at.(i), q.Eq.seq.(i), i, d) :: !cands
          | None -> ()
      done;
      let cands =
        List.sort
          (fun (a1, s1, _, _) (a2, s2, _, _) ->
            match Float.compare a1 a2 with
            | 0 -> Int.compare s1 s2
            | c -> c)
          !cands
      in
      match cands with
      | [] -> assert false (* the root itself is tagged *)
      | [ (_, s, _, _) ] ->
          (* Only one deliverable message in the window: no choice to
             make. It is necessarily the root. *)
          Hashtbl.remove ctl.tags s;
          let fn = Eq.take q in
          fire t ~at:t0 fn;
          true
      | _ :: _ :: _ ->
          let arr =
            Array.of_list
              (List.map
                 (fun (at, _, _, d) ->
                   {
                     c_at = at;
                     c_src = d.d_src;
                     c_dst = d.d_dst;
                     c_note = d.d_note;
                   })
                 cands)
          in
          ctl.decisions <- ctl.decisions + 1;
          let k = ctl.cfg.choose ~now:t.clock arr in
          if k < 0 || k >= Array.length arr then
            invalid_arg "Sim: controller chose an out-of-range candidate";
          let _, s, i, _ = List.nth cands k in
          Hashtbl.remove ctl.tags s;
          let fn = Eq.remove q i in
          fire t ~at:t0 fn;
          true
    end
  end

let run_until t horizon =
  (match t.ctl with
  | None ->
      let continue = ref true in
      while !continue do
        if Eq.length t.events > 0 && Eq.min_at t.events <= horizon then begin
          let at = Eq.min_at t.events in
          let fn = Eq.take t.events in
          t.clock <- Float.max t.clock at;
          t.fired <- t.fired + 1;
          fn ()
        end
        else continue := false
      done
  | Some ctl -> while controlled_step t ctl horizon do () done);
  t.clock <- Float.max t.clock horizon

let peek_at t = if Eq.length t.events = 0 then None else Some (Eq.min_at t.events)

let drain_window t ~width =
  if width < 0.0 then invalid_arg "Sim.drain_window: width must be >= 0";
  match peek_at t with
  | None -> 0
  | Some t0 ->
      let limit = t0 +. width in
      let fired = ref 0 in
      let continue = ref true in
      while !continue do
        if Eq.length t.events > 0 && Eq.min_at t.events <= limit then begin
          let at = Eq.min_at t.events in
          (match t.ctl with
          | Some c -> Hashtbl.remove c.tags t.events.Eq.seq.(0)
          | None -> ());
          let fn = Eq.take t.events in
          fire t ~at fn;
          incr fired
        end
        else continue := false
      done;
      !fired

let run_to_completion ?(max_events = 100_000_000) t =
  let count = ref 0 in
  while Eq.length t.events > 0 do
    incr count;
    if !count > max_events then
      failwith "Sim.run_to_completion: event budget exhausted";
    let at = Eq.min_at t.events in
    (match t.ctl with
    | Some c -> Hashtbl.remove c.tags t.events.Eq.seq.(0)
    | None -> ());
    let fn = Eq.take t.events in
    t.clock <- Float.max t.clock at;
    t.fired <- t.fired + 1;
    fn ()
  done

let pending t = Eq.length t.events
let fired t = t.fired
let pushed t = t.pushed
let peak_depth t = t.peak
