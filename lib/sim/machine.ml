type queue = [ `Cpu | `Nic_out | `Nic_in ]

type t = {
  sim : Sim.t;
  bandwidth : float;
  mutable speed : float;
  mutable cpu_free : float;
  mutable nic_out_free : float;
  mutable nic_in_free : float;
  mutable cpu_used : float;
  mutable nic_out_used : float;
  mutable nic_in_used : float;
  mutable cpu_depth : int;
  mutable nic_out_depth : int;
  mutable nic_in_depth : int;
  mutable cpu_ops : int;
  mutable nic_out_ops : int;
  mutable nic_in_ops : int;
  mutable cpu_peak : int;
  mutable nic_out_peak : int;
  mutable nic_in_peak : int;
  mutable on_service :
    (queue:queue -> start:float -> duration:float -> unit) option;
}

let create ~sim ~bandwidth =
  if bandwidth <= 0.0 then invalid_arg "Machine.create: bandwidth must be positive";
  {
    sim;
    bandwidth;
    speed = 1.0;
    cpu_free = 0.0;
    nic_out_free = 0.0;
    nic_in_free = 0.0;
    cpu_used = 0.0;
    nic_out_used = 0.0;
    nic_in_used = 0.0;
    cpu_depth = 0;
    nic_out_depth = 0;
    nic_in_depth = 0;
    cpu_ops = 0;
    nic_out_ops = 0;
    nic_in_ops = 0;
    cpu_peak = 0;
    nic_out_peak = 0;
    nic_in_peak = 0;
    on_service = None;
  }

let bandwidth t = t.bandwidth

let set_speed t s =
  if s <= 0.0 then invalid_arg "Machine.set_speed: speed must be positive";
  t.speed <- s

let speed t = t.speed

let set_service_hook t hook = t.on_service <- hook

let incr_depth t = function
  | `Cpu ->
      t.cpu_depth <- t.cpu_depth + 1;
      t.cpu_ops <- t.cpu_ops + 1;
      if t.cpu_depth > t.cpu_peak then t.cpu_peak <- t.cpu_depth
  | `Nic_out ->
      t.nic_out_depth <- t.nic_out_depth + 1;
      t.nic_out_ops <- t.nic_out_ops + 1;
      if t.nic_out_depth > t.nic_out_peak then t.nic_out_peak <- t.nic_out_depth
  | `Nic_in ->
      t.nic_in_depth <- t.nic_in_depth + 1;
      t.nic_in_ops <- t.nic_in_ops + 1;
      if t.nic_in_depth > t.nic_in_peak then t.nic_in_peak <- t.nic_in_depth

let decr_depth t = function
  | `Cpu -> t.cpu_depth <- t.cpu_depth - 1
  | `Nic_out -> t.nic_out_depth <- t.nic_out_depth - 1
  | `Nic_in -> t.nic_in_depth <- t.nic_in_depth - 1

let serve t ~queue ~free ~duration k =
  let start = Float.max (Sim.now t.sim) !free in
  let finish = start +. duration in
  free := finish;
  incr_depth t queue;
  (match t.on_service with
  | Some f -> f ~queue ~start ~duration
  | None -> ());
  Sim.schedule_at t.sim ~at:finish (fun () ->
      decr_depth t queue;
      k ())

let cpu t ~duration k =
  if duration < 0.0 then invalid_arg "Machine.cpu: negative duration";
  (* Dividing by a speed of exactly 1.0 is a bit-exact identity, so an
     unfaulted machine schedules precisely as before. *)
  let duration = duration /. t.speed in
  t.cpu_used <- t.cpu_used +. duration;
  let free = ref t.cpu_free in
  serve t ~queue:`Cpu ~free ~duration k;
  t.cpu_free <- !free

let nic_out t ~bytes k =
  if bytes < 0 then invalid_arg "Machine.nic_out: negative bytes";
  let duration = float_of_int bytes /. t.bandwidth in
  t.nic_out_used <- t.nic_out_used +. duration;
  let free = ref t.nic_out_free in
  serve t ~queue:`Nic_out ~free ~duration k;
  t.nic_out_free <- !free

let nic_in t ~bytes k =
  if bytes < 0 then invalid_arg "Machine.nic_in: negative bytes";
  let duration = float_of_int bytes /. t.bandwidth in
  t.nic_in_used <- t.nic_in_used +. duration;
  let free = ref t.nic_in_free in
  serve t ~queue:`Nic_in ~free ~duration k;
  t.nic_in_free <- !free

let cpu_busy_until t = t.cpu_free
let nic_out_busy_until t = t.nic_out_free
let nic_in_busy_until t = t.nic_in_free

let cpu_busy_seconds t = t.cpu_used
let nic_out_busy_seconds t = t.nic_out_used
let nic_in_busy_seconds t = t.nic_in_used

let queue_depth t = function
  | `Cpu -> t.cpu_depth
  | `Nic_out -> t.nic_out_depth
  | `Nic_in -> t.nic_in_depth

let ops t = function
  | `Cpu -> t.cpu_ops
  | `Nic_out -> t.nic_out_ops
  | `Nic_in -> t.nic_in_ops

let peak_depth t = function
  | `Cpu -> t.cpu_peak
  | `Nic_out -> t.nic_out_peak
  | `Nic_in -> t.nic_in_peak
