(** The memory pool (paper §III-E): "a bidirectional queue in which new
    transactions are inserted from the back while old transactions (from
    forked blocks) are inserted from the front. Each node maintains a local
    memory pool to avoid duplication check."

    Capacity is the [memsize] parameter of Table I; adds beyond capacity
    are rejected so that client back-pressure can be modelled. Transactions
    batched into a proposal stay out of the pool unless explicitly returned
    ([requeue_front]) when their block is overwritten by a fork, or dropped
    for good ([forget]) once a block commits. *)

open Bamboo_types

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1000 (the paper's [memsize] default). *)

val length : t -> int

val is_empty : t -> bool

val capacity : t -> int

val add : t -> Tx.t -> bool
(** [add t tx] enqueues a fresh transaction at the back. Returns [false]
    (and leaves the pool unchanged) when the pool is full or [tx] is
    already present or in flight. *)

val requeue_front : t -> Tx.t list -> int
(** [requeue_front t txs] returns transactions recovered from forked
    blocks to the front of the queue, preserving their relative order.
    Only transactions this pool batched ([In_flight]) are re-inserted;
    committed, still-queued, foreign, or over-capacity transactions are
    skipped. Returns how many were re-inserted. *)

val batch : t -> max:int -> Tx.t list
(** [batch t ~max] removes up to [max] transactions from the front for
    inclusion in a block ("the proposer batches all the transactions in the
    memory pool if the amount is less than the target block size"). The
    taken transactions are remembered as in-flight for deduplication. *)

val forget : t -> Tx.t list -> unit
(** [forget t txs] marks transactions as durably committed: they will never
    be accepted or re-queued again. *)

val contains : t -> Tx.id -> bool
(** Whether the id is queued or in flight (not yet forgotten). *)

type stats = {
  peak_occupancy : int;  (** high-water mark of {!length} *)
  batches : int;  (** {!batch} calls over the pool's lifetime *)
  batched_txs : int;  (** transactions those batches removed *)
  rejected_full : int;  (** {!add} refusals because the pool was full *)
  rejected_dup : int;  (** {!add} refusals because the tx was known *)
}

val stats : t -> stats
(** Observe-only tallies for the metrics layer. Mean batch fill is
    [batched_txs / batches] against the configured block size; the
    rejection split makes load-shedding observable rather than silent
    (capacity rejections are the backpressure signal the ingest path
    surfaces to clients). *)
