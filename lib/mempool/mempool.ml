open Bamboo_types
module Deque = Bamboo_util.Deque

type status = Queued | In_flight | Committed

(* Keyed by the boxed [Tx.id] record, so lookups go through the
   monomorphic hash/equal of [Tx.Id_tbl] rather than the polymorphic
   primitives. *)
type t = {
  queue : Tx.t Deque.t;
  status : status Tx.Id_tbl.t;
  cap : int;
  (* observe-only tallies, surfaced through [stats] *)
  mutable peak : int;
  mutable n_batches : int;
  mutable n_batched : int;
  mutable n_rejected_full : int;
  mutable n_rejected_dup : int;
}

type stats = {
  peak_occupancy : int;
  batches : int;
  batched_txs : int;
  rejected_full : int;
  rejected_dup : int;
}

let create ?(capacity = 1000) () =
  if capacity <= 0 then invalid_arg "Mempool.create: capacity must be positive";
  {
    queue = Deque.create ();
    status = Tx.Id_tbl.create 256;
    cap = capacity;
    peak = 0;
    n_batches = 0;
    n_batched = 0;
    n_rejected_full = 0;
    n_rejected_dup = 0;
  }

let stats t =
  {
    peak_occupancy = t.peak;
    batches = t.n_batches;
    batched_txs = t.n_batched;
    rejected_full = t.n_rejected_full;
    rejected_dup = t.n_rejected_dup;
  }

let length t = Deque.length t.queue
let is_empty t = Deque.is_empty t.queue
let capacity t = t.cap

let add t (tx : Tx.t) =
  if Deque.length t.queue >= t.cap then begin
    t.n_rejected_full <- t.n_rejected_full + 1;
    false
  end
  else if Tx.Id_tbl.mem t.status tx.id then begin
    t.n_rejected_dup <- t.n_rejected_dup + 1;
    false
  end
  else begin
    Tx.Id_tbl.add t.status tx.id Queued;
    Deque.push_back t.queue tx;
    let len = Deque.length t.queue in
    if len > t.peak then t.peak <- len;
    true
  end

let requeue_front t txs =
  (* Preserve relative order: pushing front in reverse keeps the original
     order at the head of the queue. *)
  let count = ref 0 in
  List.iter
    (fun (tx : Tx.t) ->
      match Tx.Id_tbl.find_opt t.status tx.id with
      | Some Committed | Some Queued -> ()
      | None ->
          (* Not from this replica's pool: the forked block was proposed by
             another node; its proposer re-queues it there. *)
          ()
      | Some In_flight ->
          if Deque.length t.queue < t.cap then begin
            Tx.Id_tbl.replace t.status tx.id Queued;
            Deque.push_front t.queue tx;
            incr count
          end
          else Tx.Id_tbl.remove t.status tx.id)
    (List.rev txs);
  let len = Deque.length t.queue in
  if len > t.peak then t.peak <- len;
  !count

let batch t ~max =
  if max < 0 then invalid_arg "Mempool.batch: negative max";
  let rec take acc k =
    if k = 0 then List.rev acc
    else
      match Deque.pop_front t.queue with
      | None -> List.rev acc
      | Some tx -> (
          (* A queued tx may have been committed meanwhile through a block
             proposed elsewhere (client-broadcast mode); skip it. *)
          match Tx.Id_tbl.find_opt t.status tx.Tx.id with
          | Some Committed -> take acc k
          | Some Queued | Some In_flight | None ->
              Tx.Id_tbl.replace t.status tx.Tx.id In_flight;
              take (tx :: acc) (k - 1))
  in
  let taken = take [] max in
  t.n_batches <- t.n_batches + 1;
  t.n_batched <- t.n_batched + List.length taken;
  taken

let forget t txs =
  List.iter (fun (tx : Tx.t) -> Tx.Id_tbl.replace t.status tx.Tx.id Committed) txs

let contains t id =
  match Tx.Id_tbl.find_opt t.status id with
  | Some Queued | Some In_flight -> true
  | Some Committed | None -> false
